//! The protocol engine: orchestrates setup → offline → online and
//! reports results with full communication metrics.

use rand::Rng;

use yoso_circuit::Circuit;
use yoso_field::PrimeField;
use yoso_pss_sharing::ScratchPool;
use yoso_runtime::{Adversary, BulletinBoard, LeakLog, PhaseAccumulator, PhaseStats};

use crate::messages::Post;
use crate::offline::run_offline_in;
use crate::online::run_online_in;
use crate::setup::{rekey_setup_in, run_setup_in};
use crate::workitem::{RolePartition, ShardedBoard};
use crate::{ProtocolError, ProtocolParams};

/// Which bulletin-board transport a run posts to.
///
/// `Copy` so [`ExecutionConfig`] stays `Copy` (a `SocketAddr` is
/// `Copy`); the board itself is constructed lazily per run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoardBackend {
    /// The default in-process board (round-indexed `RwLock` log).
    InProcess,
    /// A remote `board-server` reached over TCP; all postings are
    /// sequenced by the server, so multiple OS processes share one
    /// board.
    Tcp(std::net::SocketAddr),
}

impl BoardBackend {
    /// Builds a board for this backend, honoring `audit`. TCP boards
    /// use the transport's default pipelining window; use
    /// [`BoardBackend::make_board_with`] to pick one explicitly.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Transport`] if the TCP backend cannot connect.
    pub fn make_board(&self, audit: bool) -> Result<BulletinBoard<Post>, ProtocolError> {
        self.make_board_with(audit, 0)
    }

    /// [`BoardBackend::make_board`] with an explicit post-pipelining
    /// window for the TCP backend: `0` keeps the transport default,
    /// `1` forces strict lockstep (one round trip per post frame),
    /// larger values stream that many frames per coalesced ack. The
    /// in-process backend ignores the window (it has no wire).
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Transport`] if the TCP backend cannot connect.
    pub fn make_board_with(
        &self,
        audit: bool,
        window: usize,
    ) -> Result<BulletinBoard<Post>, ProtocolError> {
        match self {
            BoardBackend::InProcess => Ok(if audit {
                BulletinBoard::new()
            } else {
                BulletinBoard::metered_only()
            }),
            BoardBackend::Tcp(addr) => {
                let mut opts = yoso_runtime::TcpOptions::default();
                if window > 0 {
                    opts.pipeline_window = window;
                }
                Ok(BulletinBoard::connect_tcp_with(*addr, opts)?.with_audit(audit))
            }
        }
    }
}

/// Execution knobs for the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutionConfig {
    /// Produce and verify NIZK proofs (default). Disabling skips the
    /// proof computation for large-scale sweeps; communication is
    /// metered identically (the nominal proof sizes are charged either
    /// way) and validity is decided by the behavior tags.
    pub produce_proofs: bool,
    /// Retain the full posting audit log on the board (default). For
    /// huge runs, disable to keep only the meter.
    pub audit_board: bool,
    /// Generate the threshold key with the dealer-free DKG
    /// ([`crate::dkg`]) instead of the paper's trusted setup.
    pub dealerless_setup: bool,
    /// Worker threads for the data-parallel protocol steps (Beaver
    /// triple generation, per-item re-encryption in the offline
    /// packing, KFF key-distribution and output phases, per-member
    /// online share computation). `1`
    /// (the default) runs everything inline. Any value produces
    /// byte-identical transcripts: per-item randomness is derived from
    /// sequentially drawn child seeds and board posts are replayed in
    /// item order — see [`crate::parallel`].
    pub num_threads: usize,
    /// Which board transport the run posts to. The protocol logic is
    /// transport-agnostic: any backend yields the same transcript.
    pub board: BoardBackend,
    /// Post-pipelining window for the TCP board: `0` (the default)
    /// keeps the transport default, `1` forces strict lockstep, larger
    /// values stream that many post frames per coalesced ack. Never
    /// affects the transcript — only how many round trips a flush
    /// costs. Ignored by the in-process backend.
    pub board_window: usize,
    /// The contiguous role range this process owns. The default
    /// ([`RolePartition::solo`]) owns every role — single-process
    /// execution. A worker in a role-sharded run owns `[lo, hi)`:
    /// it replicates all value computation (child-seeded per member,
    /// so streams agree across workers) but produces and verifies
    /// NIZK proofs only for owned members, and appends only owned
    /// members' posts to the shared board. The interleaved transcript
    /// across workers is byte-identical to a solo run.
    pub partition: RolePartition,
    /// Distribute the offline Step-4 packing transforms across the
    /// worker fleet (default off). Each worker evaluates only the
    /// dealing rows of the members its `partition` owns and publishes
    /// them as [`crate::messages::Post::TransformSlice`] records; the
    /// batch is recombined from the board after a mid-round exchange
    /// (see [`crate::disttransform`]). The computed ciphertexts are
    /// bit-identical to the replicated path; the transcript gains `n`
    /// member-ordered transform records per batch, identical at every
    /// worker count. Requires `audit_board` when combined with a
    /// non-solo partition (workers read the slices back off the
    /// board).
    pub dist_transform: bool,
    /// Stream the transcript instead of materializing it (default
    /// off). When set, per-phase statistics and a 64-bit transcript
    /// hash are folded incrementally from sealed board rounds at stage
    /// boundaries ([`yoso_runtime::PhaseAccumulator`]), consumed
    /// rounds are dropped under a retention watermark (solo runs
    /// only — a shared board is never truncated under other workers),
    /// and the packed-sharing scratch buffers are pooled and reused
    /// across share/reconstruct calls. Requires `audit_board`: a
    /// metering-only board stores nothing to stream. Never affects
    /// the transcript — outputs and postings are byte-identical with
    /// the flag on or off.
    pub streaming: bool,
}

impl Default for ExecutionConfig {
    fn default() -> Self {
        ExecutionConfig {
            produce_proofs: true,
            audit_board: true,
            dealerless_setup: false,
            num_threads: 1,
            board: BoardBackend::InProcess,
            board_window: 0,
            partition: RolePartition::solo(),
            dist_transform: false,
            streaming: false,
        }
    }
}

impl ExecutionConfig {
    /// A configuration tuned for large parameter sweeps: metering only.
    pub fn sweep() -> Self {
        ExecutionConfig {
            audit_board: false,
            produce_proofs: false,
            ..ExecutionConfig::default()
        }
    }

    /// Replaces the trusted dealer with the distributed key generation.
    pub fn dealerless(mut self) -> Self {
        self.dealerless_setup = true;
        self
    }

    /// Sets the worker-thread count for the data-parallel steps
    /// (`0` is treated as `1`).
    pub fn with_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads.max(1);
        self
    }

    /// Selects the board transport backend.
    pub fn with_board(mut self, board: BoardBackend) -> Self {
        self.board = board;
        self
    }

    /// Sets the TCP board's post-pipelining window (`0` = transport
    /// default, `1` = strict lockstep).
    pub fn with_board_window(mut self, window: usize) -> Self {
        self.board_window = window;
        self
    }

    /// Enables streaming transcript consumption: incremental phase
    /// stats and transcript hashing, bounded board retention (solo
    /// runs), and pooled share-buffer arenas. Implies `audit_board`.
    pub fn with_streaming(mut self) -> Self {
        self.streaming = true;
        self.audit_board = true;
        self
    }

    /// Enables the distributed Step-4 packing transforms: per-worker
    /// transform work shrinks to the owned member rows, at the cost of
    /// `n` transform-slice board records per batch.
    pub fn with_dist_transform(mut self) -> Self {
        self.dist_transform = true;
        self
    }

    /// Restricts this process to the given role partition (worker
    /// mode). Non-solo partitions require `audit_board` — the round
    /// clock and transcript positions are the only synchronization
    /// between workers.
    pub fn with_partition(mut self, partition: RolePartition) -> Self {
        self.partition = partition;
        self
    }
}

/// Maps a phase label to the coarse phase index used by fail-stop
/// crash scheduling (`Behavior::FailStop { crash_phase }`).
pub(crate) fn phase_index(phase: &str) -> u64 {
    if phase.starts_with("setup") {
        0
    } else if phase.starts_with("offline") {
        1
    } else if phase.starts_with("online/1") {
        2
    } else if phase.starts_with("online/2") {
        3
    } else if phase.starts_with("online/3") {
        4
    } else if phase.starts_with("online/4") {
        5
    } else {
        6
    }
}

/// Crash-phase constants for configuring fail-stop adversaries.
pub mod crash_phases {
    /// Crash before the offline phase.
    pub const OFFLINE: u64 = 1;
    /// Crash before online key distribution.
    pub const ONLINE_KEYDIST: u64 = 2;
    /// Crash before the online multiplication steps.
    pub const ONLINE_MULT: u64 = 4;
    /// Crash before the output step.
    pub const ONLINE_OUTPUT: u64 = 5;
}

/// The outcome of a full protocol run.
#[derive(Debug, Clone)]
pub struct RunResult<F: PrimeField> {
    /// Per-client outputs in output-gate order.
    pub outputs: Vec<Vec<F>>,
    /// Per-phase communication statistics.
    pub phases: Vec<(String, PhaseStats)>,
    /// Total multiplication gates in the circuit.
    pub mul_gates: usize,
    /// Total wires.
    pub wires: usize,
    /// The public `μ = v − λ` value of every wire (diagnostics).
    pub mu: Vec<F>,
    /// Number of synchronous rounds the run consumed.
    pub rounds: u64,
    /// The adversarial-view log: which shares of which secret objects
    /// the corrupted roles exposed (privacy accounting).
    pub leaks: LeakLog,
    /// Wall-clock seconds per protocol stage (`setup`, `dkg`,
    /// `offline`, `online`), in execution order. Diagnostics only —
    /// never feeds the transcript; workers use it to report where a
    /// run's time went (compute vs board round trips).
    pub stage_wall_secs: Vec<(&'static str, f64)>,
    /// FNV-1a 64 hash of every transcript line, in posting order
    /// (`Some` only for streaming runs). Two runs with equal hashes
    /// produced byte-identical transcripts; the bench harness uses it
    /// to pin the streaming path to the materialized one.
    pub transcript_hash: Option<u64>,
}

impl<F: PrimeField> RunResult<F> {
    /// Total elements posted under phases starting with `prefix`.
    pub fn elements(&self, prefix: &str) -> u64 {
        self.phases
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(_, s)| s.elements)
            .sum()
    }

    /// Online elements per multiplication gate (the paper's headline
    /// metric).
    pub fn online_elements_per_gate(&self) -> f64 {
        self.elements("online/3-mult") as f64 / self.mul_gates.max(1) as f64
    }

    /// Offline elements per multiplication gate.
    pub fn offline_elements_per_gate(&self) -> f64 {
        self.elements("offline") as f64 / self.mul_gates.max(1) as f64
    }
}

/// The packed-YOSO protocol engine.
#[derive(Debug, Clone, Copy)]
pub struct Engine {
    params: ProtocolParams,
    config: ExecutionConfig,
}

impl Engine {
    /// Creates an engine with the given parameters.
    pub fn new(params: ProtocolParams, config: ExecutionConfig) -> Self {
        Engine { params, config }
    }

    /// The protocol parameters.
    pub fn params(&self) -> &ProtocolParams {
        &self.params
    }

    /// Runs the full three-phase protocol on `circuit` with the given
    /// client inputs under `adversary`.
    ///
    /// # Errors
    ///
    /// Propagates protocol errors; under the declared corruption model
    /// the run always succeeds (GOD).
    pub fn run<F: PrimeField, R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        circuit: &Circuit<F>,
        inputs: &[Vec<F>],
        adversary: &Adversary,
    ) -> Result<RunResult<F>, ProtocolError> {
        let board: BulletinBoard<Post> = self
            .config
            .board
            .make_board_with(self.config.audit_board, self.config.board_window)?;
        self.run_with_board(rng, circuit, inputs, adversary, &board)
    }

    /// Like [`Engine::run`] but on a caller-supplied board. This is the
    /// entry point for role-sharded workers: every worker runs this
    /// with the same seed and circuit against one shared board (TCP in
    /// production; a cloned in-process board in tests), each with its
    /// own `config.partition`, and the interleaved transcript is
    /// byte-identical to a solo run.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::BadParameters`] if a non-solo partition is
    /// combined with `audit_board = false` (worker synchronization
    /// reads transcript positions, which a metering-only board does
    /// not keep) or does not fit inside `[0, n)`.
    #[allow(clippy::too_many_lines)]
    pub fn run_with_board<F: PrimeField, R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        circuit: &Circuit<F>,
        inputs: &[Vec<F>],
        adversary: &Adversary,
        board: &BulletinBoard<Post>,
    ) -> Result<RunResult<F>, ProtocolError> {
        let partition = self.config.partition;
        if self.config.streaming && !self.config.audit_board {
            return Err(ProtocolError::BadParameters(
                "streaming execution needs audit_board: a metering-only board stores no \
                 postings to stream"
                    .into(),
            ));
        }
        if !partition.is_solo() {
            if !self.config.audit_board {
                return Err(ProtocolError::BadParameters(
                    "role-sharded execution needs audit_board: workers synchronize on \
                     transcript positions, which a metering-only board does not keep"
                        .into(),
                ));
            }
            if partition.hi() > self.params.n {
                return Err(ProtocolError::BadParameters(format!(
                    "role partition [{}, {}) exceeds the committee size n = {}",
                    partition.lo(),
                    partition.hi(),
                    self.params.n
                )));
            }
        }
        let sb = ShardedBoard::new(board, partition)?;
        let bc = circuit.batched(self.params.k);
        let leak = LeakLog::new();
        // Streaming: a scratch-buffer pool for the pss hot path (a
        // fresh buffer per call when off — the legacy allocation
        // profile), plus an accumulator folding sealed rounds into
        // phase stats and the transcript hash at stage boundaries.
        // Solo runs additionally drop consumed rounds behind the
        // retention watermark; a shared board is left intact (other
        // workers drain at their own pace).
        let pool = ScratchPool::new(self.config.streaming);
        let mut acc = if self.config.streaming { Some(PhaseAccumulator::new()) } else { None };
        let drain = |acc: &mut PhaseAccumulator| -> Result<(), ProtocolError> {
            acc.drain_sealed(board)?;
            if partition.is_solo() {
                board.retain_rounds_from(acc.next_round())?;
            }
            Ok(())
        };
        // Stage timing is diagnostics only (worker wall-clock reports);
        // nothing derived from these clocks reaches the board.
        let mut stage_wall_secs: Vec<(&'static str, f64)> = Vec::new();
        let mut stage_start = std::time::Instant::now();
        let mut note_stage = |name: &'static str, start: &mut std::time::Instant| {
            stage_wall_secs.push((name, start.elapsed().as_secs_f64()));
            *start = std::time::Instant::now();
        };
        let mut setup = run_setup_in::<F, _>(
            rng,
            &self.params,
            &sb,
            circuit.mul_depth(),
            circuit.clients(),
        )?;
        note_stage("setup", &mut stage_start);
        if let Some(a) = acc.as_mut() {
            drain(a)?;
        }
        if self.config.dealerless_setup {
            // Replace the dealer's key with a DKG among the first
            // committee, then re-encrypt the KFF secrets under it.
            let committee = adversary.sample_committee(rng, "dkg", self.params.n);
            let role_keys: Vec<yoso_the::mock::PkeKeyPair<F>> = (0..self.params.n)
                .map(|_| yoso_the::mock::LinearPke::keygen(rng))
                .collect();
            let chain = crate::dkg::run_dkg_in(
                rng,
                &sb,
                &committee,
                &role_keys,
                self.params.t,
                &self.config,
            )?;
            setup = rekey_setup_in(rng, &self.params, &sb, setup, chain)?;
            note_stage("dkg", &mut stage_start);
            if let Some(a) = acc.as_mut() {
                drain(a)?;
            }
        }
        setup.tsk.set_leak_log(leak.clone());
        let offline =
            run_offline_in(rng, &self.params, &sb, adversary, &self.config, &bc, &setup, &pool)?;
        note_stage("offline", &mut stage_start);
        if let Some(a) = acc.as_mut() {
            drain(a)?;
        }
        let online = run_online_in(
            rng,
            &self.params,
            &sb,
            adversary,
            &self.config,
            &bc,
            &setup,
            offline,
            inputs,
            &leak,
            &pool,
        )?;
        note_stage("online", &mut stage_start);
        sb.finish()?;
        // A sharded worker's own meter saw only the posts it appended;
        // rebuild the per-phase statistics from the shared transcript
        // so every worker reports the full run. A streaming run has
        // folded every sealed round already — absorb the final open
        // round and report from the accumulator (identical stats,
        // no materialization).
        let transcript_hash = match acc.as_mut() {
            Some(a) => {
                a.finish(board)?;
                Some(a.transcript_hash())
            }
            None => None,
        };
        let phases = match &acc {
            Some(a) => a.phases(),
            None if partition.is_solo() => board.meter().phases(),
            None => yoso_runtime::phases_from_postings(&board.postings()?),
        };
        Ok(RunResult {
            outputs: online.outputs,
            phases,
            mul_gates: circuit.mul_count(),
            wires: circuit.wire_count(),
            mu: online.mu,
            rounds: board.round()?,
            leaks: leak,
            stage_wall_secs,
            transcript_hash,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use yoso_circuit::{generators, CircuitBuilder};
    use yoso_field::F61;
    use yoso_runtime::ActiveAttack;

    fn f(v: u64) -> F61 {
        F61::from(v)
    }

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn single_multiplication_honest() {
        let mut r = rng(1);
        let mut b = CircuitBuilder::<F61>::new();
        let x = b.input(0);
        let y = b.input(1);
        let p = b.mul(x, y);
        b.output(p, 0);
        let circuit = b.build().unwrap();
        let engine = Engine::new(ProtocolParams::new(8, 2, 2).unwrap(), ExecutionConfig::default());
        let run = engine
            .run(&mut r, &circuit, &[vec![f(6)], vec![f(7)]], &Adversary::none())
            .unwrap();
        assert_eq!(run.outputs[0], vec![f(42)]);
    }

    #[test]
    fn inner_product_matches_cleartext() {
        let mut r = rng(2);
        let circuit = generators::inner_product::<F61>(6).unwrap();
        let x: Vec<F61> = (1..=6u64).map(f).collect();
        let y: Vec<F61> = (10..16u64).map(f).collect();
        let expect = circuit.evaluate(&[x.clone(), y.clone()]).unwrap();
        let engine =
            Engine::new(ProtocolParams::new(10, 2, 3).unwrap(), ExecutionConfig::default());
        let run = engine.run(&mut r, &circuit, &[x, y], &Adversary::none()).unwrap();
        assert_eq!(run.outputs, expect);
    }

    #[test]
    fn deep_circuit_with_linear_gates() {
        let mut r = rng(3);
        let mut b = CircuitBuilder::<F61>::new();
        let x = b.input(0);
        let y = b.input(0);
        let c = b.constant(f(3));
        let s = b.add(x, y);
        let d = b.sub(s, c);
        let e = b.mul_const(d, f(5));
        let m1 = b.mul(e, x);
        let m2 = b.mul(m1, y);
        let fin = b.add(m2, c);
        b.output(fin, 0);
        let circuit = b.build().unwrap();
        let inputs = vec![vec![f(4), f(9)]];
        let expect = circuit.evaluate(&inputs).unwrap();
        let engine =
            Engine::new(ProtocolParams::new(9, 2, 2).unwrap(), ExecutionConfig::default());
        let run = engine.run(&mut r, &circuit, &inputs, &Adversary::none()).unwrap();
        assert_eq!(run.outputs, expect);
    }

    #[test]
    fn god_under_active_attack() {
        let mut r = rng(4);
        let circuit = generators::inner_product::<F61>(4).unwrap();
        let x: Vec<F61> = (1..=4u64).map(f).collect();
        let y: Vec<F61> = (5..=8u64).map(f).collect();
        let expect = circuit.evaluate(&[x.clone(), y.clone()]).unwrap();
        for attack in [
            ActiveAttack::WrongValue,
            ActiveAttack::BadProof,
            ActiveAttack::Silent,
            ActiveAttack::AdditiveOffset,
        ] {
            let engine =
                Engine::new(ProtocolParams::new(10, 2, 2).unwrap(), ExecutionConfig::default());
            let adv = Adversary::active(2, attack);
            let run = engine.run(&mut r, &circuit, &[x.clone(), y.clone()], &adv).unwrap();
            assert_eq!(run.outputs, expect, "GOD must hold under {attack:?}");
        }
    }

    #[test]
    fn failstop_tolerance_with_halved_packing() {
        let mut r = rng(5);
        let circuit = generators::inner_product::<F61>(4).unwrap();
        let x: Vec<F61> = (1..=4u64).map(f).collect();
        let y: Vec<F61> = (5..=8u64).map(f).collect();
        let expect = circuit.evaluate(&[x.clone(), y.clone()]).unwrap();
        // n = 12, t = 2, k = 2, failstops = 4: 12 − 2 − 4 = 6 ≥ 2+2+1.
        let params = ProtocolParams::with_failstops(12, 2, 2, 4).unwrap();
        let adv = Adversary::active(2, ActiveAttack::WrongValue)
            .with_failstops(4, crate::engine::crash_phases::ONLINE_MULT);
        let engine = Engine::new(params, ExecutionConfig::default());
        let run = engine.run(&mut r, &circuit, &[x, y], &adv).unwrap();
        assert_eq!(run.outputs, expect);
    }

    #[test]
    fn metering_reports_all_phases() {
        let mut r = rng(6);
        let circuit = generators::inner_product::<F61>(4).unwrap();
        let x: Vec<F61> = (1..=4u64).map(f).collect();
        let y: Vec<F61> = (5..=8u64).map(f).collect();
        let engine =
            Engine::new(ProtocolParams::new(8, 1, 2).unwrap(), ExecutionConfig::default());
        let run = engine.run(&mut r, &circuit, &[x, y], &Adversary::none()).unwrap();
        for prefix in
            ["setup", "offline/1-beaver", "offline/2-wire-rand", "offline/3-dependent",
             "offline/4-pack", "offline/5-reenc-inputs", "offline/6-reenc-shares",
             "online/1-keydist", "online/2-input", "online/3-mult", "online/4-output"]
        {
            assert!(run.elements(prefix) > 0, "phase {prefix} should have traffic");
        }
        assert!(run.online_elements_per_gate() > 0.0);
        assert!(run.offline_elements_per_gate() > run.online_elements_per_gate());
    }

    #[test]
    fn sweep_config_matches_full_config_metering() {
        // Proof-less sweeps must meter identical communication.
        let circuit = generators::inner_product::<F61>(4).unwrap();
        let x: Vec<F61> = (1..=4u64).map(f).collect();
        let y: Vec<F61> = (5..=8u64).map(f).collect();
        let params = ProtocolParams::new(8, 1, 2).unwrap();
        let mut r1 = rng(7);
        let full = Engine::new(params, ExecutionConfig::default())
            .run(&mut r1, &circuit, &[x.clone(), y.clone()], &Adversary::none())
            .unwrap();
        let mut r2 = rng(7);
        let sweep = Engine::new(params, ExecutionConfig::sweep())
            .run(&mut r2, &circuit, &[x, y], &Adversary::none())
            .unwrap();
        assert_eq!(full.outputs, sweep.outputs);
        assert_eq!(full.elements("online"), sweep.elements("online"));
        assert_eq!(full.elements("offline"), sweep.elements("offline"));
    }

    #[test]
    fn streaming_run_matches_materialized_transcript() {
        // The streaming driver (incremental phase folding, retention
        // watermark, pooled scratch) must be invisible in the
        // transcript: byte-identical postings, identical phase stats,
        // identical outputs.
        let circuit = generators::inner_product::<F61>(6).unwrap();
        let x: Vec<F61> = (1..=6u64).map(f).collect();
        let y: Vec<F61> = (7..=12u64).map(f).collect();
        let params = ProtocolParams::new(12, 1, 3).unwrap();

        let mut r1 = rng(21);
        let full_board: BulletinBoard<Post> = BulletinBoard::new();
        let full = Engine::new(params, ExecutionConfig::default())
            .run_with_board(&mut r1, &circuit, &[x.clone(), y.clone()], &Adversary::none(), &full_board)
            .unwrap();
        // Hash the materialized transcript post-hoc with the same
        // accumulator the streaming engine folds incrementally.
        let mut reference = PhaseAccumulator::new();
        reference.finish(&full_board).unwrap();

        let mut r2 = rng(21);
        let streaming = Engine::new(params, ExecutionConfig::default().with_streaming())
            .run(&mut r2, &circuit, &[x, y], &Adversary::none())
            .unwrap();

        assert_eq!(full.outputs, streaming.outputs);
        assert_eq!(full.mu, streaming.mu);
        assert_eq!(full.rounds, streaming.rounds);
        assert_eq!(full.phases, streaming.phases);
        assert_eq!(full.transcript_hash, None);
        assert_eq!(streaming.transcript_hash, Some(reference.transcript_hash()));
    }

    #[test]
    fn streaming_requires_audit_board() {
        let circuit = generators::inner_product::<F61>(2).unwrap();
        let params = ProtocolParams::new(8, 1, 2).unwrap();
        let mut cfg = ExecutionConfig::sweep();
        cfg.streaming = true; // bypass with_streaming's audit implication
        let err = Engine::new(params, cfg)
            .run(&mut rng(3), &circuit, &[vec![f(1), f(2)], vec![f(3), f(4)]], &Adversary::none())
            .unwrap_err();
        assert!(matches!(err, ProtocolError::BadParameters(_)));
    }
}
