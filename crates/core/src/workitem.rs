//! Role-sharded execution: work items, role partitions, and the
//! sharded board façade that keeps an N-worker run's transcript
//! byte-identical to a single-process run.
//!
//! # Model
//!
//! Every phase loop in the pipeline enumerates per-role work — "member
//! `i` of committee `c` contributes to step `s` in round `r`" — as a
//! [`WorkItem`]. A [`RolePartition`] assigns each worker process a
//! contiguous range of committee indices; the worker *replicates* all
//! cheap value computation (field arithmetic, encryptions — required
//! so every worker holds the full protocol state) but produces and
//! verifies NIZK proofs, the dominant cost, only for the members it
//! owns, and appends only its owned members' posts to the board.
//!
//! # Determinism invariant
//!
//! Board messages carry only structural data (post kind + element
//! counts), so transcript identity reduces to producing the identical
//! *sequence* of posts. The [`ShardedBoard`] guarantees that by
//! accounting a canonical global position for every post — owned or
//! not — and appending each worker's owned posts in position order,
//! waiting on the board length until the positions below have landed.
//! Per-member child seeds (drawn unconditionally for all `n` members
//! from the phase RNG) make every member's drawn values independent of
//! whether its proofs were skipped, so all workers compute identical
//! values, outputs and validity flags.
//!
//! # Round clock as barrier
//!
//! Workers synchronize *only* through the board: at each phase
//! boundary every worker flushes its pending posts, the leader (the
//! worker owning role 0) waits for the round's full posting count and
//! ticks the round clock, and everyone else parks on
//! `wait_round_at_least` — the YOSO handoff itself is the barrier, no
//! side channel exists.

use std::sync::Mutex;

use yoso_runtime::{BulletinBoard, PostRecord, RoleId};

use crate::messages::{self, Post};
use crate::parallel::PostBuffer;
use crate::ProtocolError;

/// How long a worker waits on a peer's posts or the leader's round
/// tick before declaring the run dead. Generous: covers a slow peer
/// doing a full phase of proof work, not ordinary scheduling jitter.
const WAIT_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(120);

/// One enumerable unit of per-role phase work: "role `role` acts in
/// `phase` during board round `round`".
///
/// The pipeline's member loops are schedulable from these alone — a
/// worker executes an item's value computation always, and its proof
/// work only when its [`RolePartition`] owns the role.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkItem {
    /// The phase label the item's posts are metered under.
    pub phase: &'static str,
    /// The board round the item posts in.
    pub round: u64,
    /// The committee-member index doing the work.
    pub role: usize,
}

impl WorkItem {
    /// Enumerates the items of one committee-wide step: every role in
    /// `0..n` acting under `phase` in `round`.
    pub fn for_committee(phase: &'static str, round: u64, n: usize) -> Vec<WorkItem> {
        (0..n).map(|role| WorkItem { phase, round, role }).collect()
    }
}

/// A contiguous range of committee-member indices owned by one worker.
///
/// The default ([`RolePartition::solo`]) owns every role — the
/// single-process mode, with zero behavioral difference from the
/// pre-sharding engine. [`RolePartition::of_workers`] splits `0..n`
/// into `total` contiguous, disjoint, covering ranges (some possibly
/// empty when `total > n`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RolePartition {
    lo: usize,
    hi: usize,
    solo: bool,
}

impl Default for RolePartition {
    fn default() -> Self {
        RolePartition::solo()
    }
}

impl RolePartition {
    /// The single-process partition: owns every role of every
    /// committee and acts as leader.
    pub fn solo() -> Self {
        RolePartition { lo: 0, hi: usize::MAX, solo: true }
    }

    /// The partition owning exactly the member indices `lo..hi`
    /// (half-open; an empty range is allowed and owns nothing).
    pub fn range(lo: usize, hi: usize) -> Self {
        RolePartition { lo, hi: hi.max(lo), solo: false }
    }

    /// The range worker `worker` (of `total` workers) owns out of `n`
    /// roles: `⌊worker·n/total⌋ .. ⌊(worker+1)·n/total⌋`. Ranges are
    /// contiguous, disjoint and cover `0..n`; when `total > n` some
    /// workers own nothing.
    pub fn of_workers(worker: usize, total: usize, n: usize) -> Self {
        let total = total.max(1);
        let worker = worker.min(total - 1);
        RolePartition::range(worker * n / total, (worker + 1) * n / total)
    }

    /// Whether this partition owns committee-member index `role`.
    pub fn owns(&self, role: usize) -> bool {
        self.solo || (self.lo <= role && role < self.hi)
    }

    /// Whether this is the single-process partition.
    pub fn is_solo(&self) -> bool {
        self.solo
    }

    /// Whether this worker drives leader-only work: dealer/client
    /// posts and the round-clock ticks. Exactly one worker of any
    /// [`Self::of_workers`] split is leader — the one whose non-empty
    /// range starts at role 0 (a `total > n` split gives worker 0 the
    /// empty range `0..0`, which is *not* the leader).
    pub fn is_leader(&self) -> bool {
        self.solo || (self.lo == 0 && self.hi > 0)
    }

    /// Start of the owned range (inclusive).
    pub fn lo(&self) -> usize {
        self.lo
    }

    /// End of the owned range (exclusive).
    pub fn hi(&self) -> usize {
        self.hi
    }
}

/// Mutable position/round accounting of one worker's board view.
#[derive(Debug, Default)]
struct ShardState {
    /// Owned posts not yet appended, each with its canonical global
    /// position. Always sorted: positions are assigned in call order.
    pending: Vec<(u64, PostRecord<Post>)>,
    /// Canonical number of posts accounted so far across *all*
    /// workers (every worker replicates the full post sequence, so
    /// local accounting equals the global count).
    pos: u64,
    /// The round this worker believes the board is in.
    round: u64,
}

/// A bulletin-board façade for one role-sharded worker.
///
/// In solo mode every call passes straight through to the underlying
/// board — byte-for-byte the pre-sharding behavior. In sharded mode
/// the worker accounts a global position for every post, buffers the
/// posts it owns, and appends them in position order at the next
/// round barrier, waiting on the board length until lower positions
/// (owned by peer workers) have landed. Deadlock-free: pending runs
/// partition the round's position space, every wait points strictly
/// backward, and all workers pass the same number of barriers.
pub struct ShardedBoard<'a> {
    board: &'a BulletinBoard<Post>,
    partition: RolePartition,
    state: Mutex<ShardState>,
}

impl std::fmt::Debug for ShardedBoard<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedBoard")
            .field("partition", &self.partition)
            .finish_non_exhaustive()
    }
}

impl<'a> ShardedBoard<'a> {
    /// Wraps `board` for the single-process mode: every post passes
    /// straight through.
    pub fn solo(board: &'a BulletinBoard<Post>) -> Self {
        ShardedBoard {
            board,
            partition: RolePartition::solo(),
            state: Mutex::new(ShardState::default()),
        }
    }

    /// Wraps `board` for one worker of a sharded run.
    ///
    /// A sharded run must start from a **fresh board** (empty, round
    /// 0): every worker replicates the canonical post sequence from
    /// the beginning, so its accounting is anchored at position 0
    /// regardless of when it joins. That makes joining race-free — a
    /// worker connecting after the leader has already posted its first
    /// setup records still accounts those records at their true
    /// positions. Solo wrappers instead pick up the board's current
    /// clock so sequential phase calls chain.
    ///
    /// # Errors
    ///
    /// Propagates transport failures reading the board's clock.
    pub fn new(
        board: &'a BulletinBoard<Post>,
        partition: RolePartition,
    ) -> Result<Self, ProtocolError> {
        let (round, pos) = if partition.is_solo() {
            (board.round()?, board.len()? as u64)
        } else {
            (0, 0)
        };
        Ok(ShardedBoard {
            board,
            partition,
            state: Mutex::new(ShardState { pending: Vec::new(), pos, round }),
        })
    }

    /// The underlying board.
    pub fn board(&self) -> &'a BulletinBoard<Post> {
        self.board
    }

    /// This worker's role partition.
    pub fn partition(&self) -> RolePartition {
        self.partition
    }

    /// Whether this worker owns committee-member index `role`.
    pub fn owns(&self, role: usize) -> bool {
        self.partition.owns(role)
    }

    /// Whether this worker drives leader-only posts and round ticks.
    pub fn is_leader(&self) -> bool {
        self.partition.is_leader()
    }

    /// The round this worker is currently posting in (for building
    /// [`WorkItem`]s).
    pub fn round(&self) -> u64 {
        self.lock().round
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ShardState> {
        self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Accounts one post. `owned` says whether this worker is the one
    /// that appends it (member posts: the partition owns the member;
    /// dealer/client posts: this worker is leader). Owned posts are
    /// buffered until the next barrier; non-owned posts only advance
    /// the position counter — this never blocks.
    ///
    /// # Errors
    ///
    /// Propagates transport failures (solo mode posts immediately).
    pub fn post(
        &self,
        owned: bool,
        from: RoleId,
        message: Post,
        phase: &'static str,
        elements: u64,
    ) -> Result<(), ProtocolError> {
        if self.partition.is_solo() {
            self.board.post(from, message, phase, elements, messages::to_bytes(elements))?;
            return Ok(());
        }
        let mut st = self.lock();
        let pos = st.pos;
        st.pos += 1;
        if owned {
            st.pending.push((
                pos,
                PostRecord {
                    from,
                    phase: std::sync::Arc::from(phase),
                    message,
                    elements,
                    bytes: messages::to_bytes(elements),
                },
            ));
        }
        Ok(())
    }

    /// Accounts a whole [`PostBuffer`] (the parallel engine's replay
    /// path) according to each record's ownership flag, preserving
    /// recording order.
    ///
    /// # Errors
    ///
    /// Propagates transport failures (solo mode flushes immediately).
    pub(crate) fn flush_buffer(&self, buffer: PostBuffer) -> Result<(), ProtocolError> {
        if self.partition.is_solo() {
            buffer.flush(self.board)?;
            return Ok(());
        }
        let mut st = self.lock();
        for (owned, record) in buffer.into_record_iter() {
            let pos = st.pos;
            st.pos += 1;
            if owned {
                st.pending.push((pos, record));
            }
        }
        Ok(())
    }

    /// The canonical global position the *next* accounted post will
    /// take — the cursor a distributed-transform batch records before
    /// its posting run so it can read exactly that run back
    /// ([`yoso_runtime::BulletinBoard::postings_from`]).
    ///
    /// # Errors
    ///
    /// Propagates transport failures reading the board length (solo
    /// mode only; sharded accounting is local).
    pub fn position(&self) -> Result<u64, ProtocolError> {
        if self.partition.is_solo() {
            return Ok(self.board.len()? as u64);
        }
        Ok(self.lock().pos)
    }

    /// The mid-round exchange point of the distributed transform
    /// (DESIGN §13): flushes this worker's pending owned posts and
    /// waits until every accounted position below the current cursor
    /// has landed on the board — **without** ticking the round clock,
    /// so a phase can interleave several exchanges inside one round.
    /// Solo mode is a no-op (posts pass through immediately).
    ///
    /// Every sharded worker must call this at exactly the same points,
    /// with identical position accounting, or the later desync checks
    /// fire.
    ///
    /// The wait is `>=`, not `==`: because no round tick separates
    /// exchanges, a faster peer may legitimately have appended its
    /// *next* exchange's owned run already (its run starts exactly at
    /// this cursor when it owns the lowest rows). Readers therefore
    /// consume exactly their accounted position window
    /// ([`Self::position`] before the run) and ignore anything past
    /// it. Out-of-range appends are still caught: every owned
    /// position's drain checks the board length exactly before
    /// appending.
    ///
    /// # Errors
    ///
    /// Propagates transport failures, wait timeouts, and desync
    /// detection from the drain.
    pub fn exchange(&self) -> Result<(), ProtocolError> {
        if self.partition.is_solo() {
            return Ok(());
        }
        self.drain_pending()?;
        let total = self.lock().pos;
        self.board.wait_len_at_least(total as usize, WAIT_TIMEOUT)?;
        Ok(())
    }

    /// Appends every pending owned run to the board, in position
    /// order, waiting for peer workers' lower positions to land first.
    fn drain_pending(&self) -> Result<(), ProtocolError> {
        let pending = std::mem::take(&mut self.lock().pending);
        let mut i = 0;
        while i < pending.len() {
            // Maximal contiguous run of positions starting at i.
            let start = pending[i].0;
            let mut j = i + 1;
            while j < pending.len() && pending[j].0 == start + (j - i) as u64 {
                j += 1;
            }
            let len = self.board.wait_len_at_least(start as usize, WAIT_TIMEOUT)?;
            if len as u64 != start {
                return Err(ProtocolError::Transport(format!(
                    "board desync: worker expected to post at position {start} \
                     but the board already holds {len} posts (peer worker \
                     posted out of its range)"
                )));
            }
            // Stream the run straight into the transport's frame
            // encoder — no intermediate Vec of cloned records.
            self.board
                .post_record_stream(pending[i..j].iter().map(|(_, r)| r.clone()))?;
            i = j;
        }
        Ok(())
    }

    /// The phase barrier: flushes this worker's pending posts, has the
    /// leader verify the round is complete and tick the round clock,
    /// and parks everyone until the tick is visible. Every worker must
    /// call this at exactly the same points in the pipeline.
    ///
    /// # Errors
    ///
    /// Propagates transport failures and barrier timeouts.
    pub fn advance_round(&self) -> Result<(), ProtocolError> {
        if self.partition.is_solo() {
            self.board.advance_round()?;
            let mut st = self.lock();
            st.round += 1;
            return Ok(());
        }
        self.drain_pending()?;
        let (total, target) = {
            let st = self.lock();
            (st.pos, st.round + 1)
        };
        if self.is_leader() {
            let len = self.board.wait_len_at_least(total as usize, WAIT_TIMEOUT)?;
            if len as u64 != total {
                return Err(ProtocolError::Transport(format!(
                    "board desync at round barrier: expected {total} total \
                     posts, board holds {len}"
                )));
            }
            self.board.advance_round()?;
        }
        self.board.wait_round_at_least(target, WAIT_TIMEOUT)?;
        self.lock().round = target;
        Ok(())
    }

    /// Final drain: flushes pending posts and waits until the whole
    /// canonical post sequence is on the board (the pipeline's last
    /// phase has no trailing round tick, and every worker rebuilds its
    /// metering from the complete log).
    ///
    /// # Errors
    ///
    /// Propagates transport failures and wait timeouts.
    pub fn finish(&self) -> Result<(), ProtocolError> {
        if self.partition.is_solo() {
            return Ok(());
        }
        self.drain_pending()?;
        let total = self.lock().pos;
        let len = self.board.wait_len_at_least(total as usize, WAIT_TIMEOUT)?;
        if len as u64 != total {
            return Err(ProtocolError::Transport(format!(
                "board desync at finish: expected {total} total posts, board \
                 holds {len}"
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solo_partition_owns_everything_and_leads() {
        let p = RolePartition::solo();
        assert!(p.is_solo());
        assert!(p.is_leader());
        assert!(p.owns(0));
        assert!(p.owns(1_000_000));
        assert_eq!(p, RolePartition::default());
    }

    #[test]
    fn of_workers_is_contiguous_disjoint_covering() {
        for n in [1usize, 7, 10, 16, 33] {
            for total in [1usize, 2, 3, 4, 8, 12] {
                let parts: Vec<RolePartition> =
                    (0..total).map(|w| RolePartition::of_workers(w, total, n)).collect();
                // Covering + disjoint: every role owned exactly once.
                for role in 0..n {
                    let owners = parts.iter().filter(|p| p.owns(role)).count();
                    assert_eq!(owners, 1, "role {role} of n={n}, total={total}");
                }
                // Contiguous: ranges chain lo..hi exactly.
                let mut cursor = 0;
                for p in &parts {
                    assert_eq!(p.lo(), cursor);
                    assert!(p.lo() <= p.hi());
                    cursor = p.hi();
                }
                assert_eq!(cursor, n);
                // Exactly one leader, even when worker 0's range is
                // empty (total > n gives worker 0 the range 0..0).
                let leaders = parts.iter().filter(|p| p.is_leader()).count();
                assert_eq!(leaders, 1, "n={n}, total={total}");
            }
        }
    }

    #[test]
    fn empty_range_worker_owns_nothing_and_never_leads() {
        let p = RolePartition::of_workers(0, 12, 10);
        assert_eq!((p.lo(), p.hi()), (0, 0));
        assert!(!p.owns(0));
        assert!(!p.is_leader());
        let leader = RolePartition::of_workers(1, 12, 10);
        assert_eq!((leader.lo(), leader.hi()), (0, 1));
        assert!(leader.is_leader());
    }

    #[test]
    fn work_item_enumeration_covers_committee() {
        let items = WorkItem::for_committee("offline/1", 3, 5);
        assert_eq!(items.len(), 5);
        for (i, item) in items.iter().enumerate() {
            assert_eq!(*item, WorkItem { phase: "offline/1", round: 3, role: i });
        }
    }

    #[test]
    fn solo_sharded_board_posts_through() {
        let board: BulletinBoard<Post> = BulletinBoard::new();
        let sb = ShardedBoard::solo(&board);
        sb.post(true, RoleId::new("c", 0), Post::MulShare, "x", 2).unwrap();
        assert_eq!(board.len().unwrap(), 1);
        sb.advance_round().unwrap();
        assert_eq!(board.round().unwrap(), 1);
        assert_eq!(sb.round(), 1);
        sb.finish().unwrap();
    }

    #[test]
    fn two_shards_interleave_posts_in_canonical_order() {
        // Roles 0..4 post one message each; worker A owns 0..2 and
        // worker B owns 2..4. The board must end up with the posts in
        // member order regardless of which worker flushes first.
        let board: BulletinBoard<Post> = BulletinBoard::new();
        let post_all = |sb: &ShardedBoard<'_>| {
            for i in 0..4usize {
                sb.post(
                    sb.owns(i),
                    RoleId::new("committee", i),
                    Post::MulShare,
                    "x",
                    1,
                )
                .unwrap();
            }
        };
        let a = ShardedBoard::new(&board, RolePartition::range(0, 2)).unwrap();
        let b = ShardedBoard::new(&board, RolePartition::range(2, 4)).unwrap();
        post_all(&a);
        post_all(&b);
        std::thread::scope(|s| {
            // B drains first: it must wait for A's lower positions.
            let hb = s.spawn(|| b.advance_round());
            let ha = s.spawn(|| a.advance_round());
            ha.join().unwrap().unwrap();
            hb.join().unwrap().unwrap();
        });
        let postings = board.postings().unwrap();
        assert_eq!(postings.len(), 4);
        for (i, p) in postings.iter().enumerate() {
            assert_eq!(p.from, RoleId::new("committee", i));
        }
        assert_eq!(board.round().unwrap(), 1);
    }

    #[test]
    fn exchange_lands_both_shards_posts_without_round_tick() {
        // Mid-round exchange: both workers post a 4-member run, call
        // exchange(), and must then each observe all 4 postings with
        // the round clock untouched — the distributed-transform
        // read-back pattern.
        let board: BulletinBoard<Post> = BulletinBoard::new();
        let a = ShardedBoard::new(&board, RolePartition::range(0, 2)).unwrap();
        let b = ShardedBoard::new(&board, RolePartition::range(2, 4)).unwrap();
        assert_eq!(a.position().unwrap(), 0);
        let run = |sb: &ShardedBoard<'_>| {
            let start = sb.position().unwrap();
            for i in 0..4usize {
                sb.post(
                    sb.owns(i),
                    RoleId::new("committee", i),
                    Post::TransformSlice { row: i as u32, values: vec![i as u64] },
                    "x",
                    1,
                )
                .unwrap();
            }
            sb.exchange().unwrap();
            (start, sb.board().postings_from(start as usize).unwrap())
        };
        let (got_a, got_b) = std::thread::scope(|s| {
            let hb = s.spawn(|| run(&b));
            let ha = s.spawn(|| run(&a));
            (ha.join().unwrap(), hb.join().unwrap())
        });
        for (start, postings) in [got_a, got_b] {
            assert_eq!(start, 0);
            assert_eq!(postings.len(), 4);
            for (i, p) in postings.iter().enumerate() {
                assert_eq!(p.from, RoleId::new("committee", i));
                assert_eq!(
                    p.message,
                    Post::TransformSlice { row: i as u32, values: vec![i as u64] }
                );
            }
        }
        assert_eq!(board.round().unwrap(), 0, "exchange must not tick the round");
        assert_eq!(a.position().unwrap(), 4);
        assert_eq!(b.position().unwrap(), 4);
    }

    #[test]
    fn solo_exchange_is_a_no_op() {
        let board: BulletinBoard<Post> = BulletinBoard::new();
        let sb = ShardedBoard::solo(&board);
        sb.post(true, RoleId::new("c", 0), Post::MulShare, "x", 1).unwrap();
        assert_eq!(sb.position().unwrap(), 1);
        sb.exchange().unwrap();
        assert_eq!(board.round().unwrap(), 0);
    }

    #[test]
    fn desync_is_detected_not_deadlocked() {
        // A rogue post outside the partition accounting shifts the
        // board length past a worker's expected position: the drain
        // must fail loudly instead of posting at the wrong offset.
        let board: BulletinBoard<Post> = BulletinBoard::new();
        let a = ShardedBoard::new(&board, RolePartition::range(0, 1)).unwrap();
        a.post(true, RoleId::new("committee", 0), Post::MulShare, "x", 1).unwrap();
        board
            .post(RoleId::new("rogue", 9), Post::MulShare, "x", 1, 8)
            .unwrap();
        let err = a.finish().unwrap_err();
        assert!(matches!(err, ProtocolError::Transport(_)), "{err}");
    }
}
