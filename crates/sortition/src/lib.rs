//! Committee-size analysis for role assignment with a corruption gap
//! (paper §6, reproducing Table 1).
//!
//! Benhamouda et al. (TCC'20) size sortition committees so that with
//! overwhelming probability the corrupt fraction stays below `1/2`.
//! The paper generalizes the analysis to a *gap*: the corrupt count
//! `t` satisfies `t ≤ c·(1/2 − ε)` for the realized committee size
//! `c`, which enables the packed protocol with packing factor
//! `k ≈ c·ε`.
//!
//! Given the sortition parameter `C` (expected committee size), the
//! global corruption ratio `f`, and security parameters
//! `(k₁, k₂, k₃)`, this crate computes — by the closed forms (4), (5)
//! and the bound (6) of the paper —
//!
//! - the slack parameters `ε₁, ε₂, ε₃`,
//! - the corruption bound `t = f·C·(1+ε₁) + f(1−f)·C·(1+ε₂) + 1`,
//! - the maximal admissible gap `ε` (or `⊥` when none exists),
//! - the committee-size lower bound `c = t/(1/2 − ε)`, the
//!   gap-free bound `c′ = 2t`, and the packing factor `k`.
//!
//! The [`table1`] function regenerates the paper's Table 1 grid, and
//! [`montecarlo`] validates the tail bounds empirically at reduced
//! security parameters (experiment E6).
//!
//! # Example
//!
//! ```rust
//! use yoso_sortition::{GapAnalysis, SecurityParams};
//!
//! let a = GapAnalysis::compute(1000.0, 0.05, SecurityParams::default())
//!     .expect("feasible at 5% corruption");
//! assert_eq!(a.t, 446);       // paper Table 1, row (1000, 0.05)
//! assert_eq!(a.c, 949);
//! assert_eq!(a.c_prime, 892); // 2·t (paper prints 893 from unrounded t)
//! assert_eq!(a.k, 28);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod montecarlo;

use serde::{Deserialize, Serialize};

/// The analysis security parameters (paper defaults: `k₁ = 64`,
/// `k₂ = k₃ = 128`).
///
/// - The adversary may grind the sortition at most `2^{k₁}` times.
/// - `φ < t` holds except with probability `2^{−k₂}`.
/// - `t ≤ c·(1/2 − ε)` holds except with probability `2^{−k₃}`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SecurityParams {
    /// Grinding budget exponent.
    pub k1: u32,
    /// Corruption-bound failure exponent.
    pub k2: u32,
    /// Committee-size-bound failure exponent.
    pub k3: u32,
}

impl Default for SecurityParams {
    fn default() -> Self {
        SecurityParams { k1: 64, k2: 128, k3: 128 }
    }
}

/// The outcome of the gap analysis for one `(C, f)` point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GapAnalysis {
    /// The sortition parameter (expected committee size).
    pub c_param: f64,
    /// Global corruption ratio.
    pub f: f64,
    /// Chernoff slack for the adversarially ground corrupt count.
    pub eps1: f64,
    /// Chernoff slack for the honest-selection variance.
    pub eps2: f64,
    /// Slack for the committee-size lower tail.
    pub eps3: f64,
    /// Corruption bound: `φ < t` w.h.p.
    pub t: u64,
    /// Committee-size lower bound with gap: `c = t/(1/2 − ε)`.
    pub c: u64,
    /// Committee-size lower bound without gap (`ε = 0`): `c′ = 2t`.
    pub c_prime: u64,
    /// The maximal admissible gap `ε`.
    pub eps: f64,
    /// The packing factor `k = ⌊c·ε⌋` the protocol can use.
    pub k: u64,
}

const LN2: f64 = std::f64::consts::LN_2;

impl GapAnalysis {
    /// Runs the analysis for sortition parameter `c_param` and global
    /// corruption ratio `f`, returning `None` (the paper's `⊥`) when
    /// no positive gap is achievable.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < f < 1` and `c_param > 0`.
    pub fn compute(c_param: f64, f: f64, sec: SecurityParams) -> Option<GapAnalysis> {
        assert!(f > 0.0 && f < 1.0, "corruption ratio must be in (0,1)");
        assert!(c_param > 0.0, "sortition parameter must be positive");
        let cf = c_param * f;
        let cf1 = c_param * f * (1.0 - f);

        // Eq. (4): smallest ε₁ with C ≥ (k₁+k₂+1)(2+ε₁)ln2 / (f·ε₁²).
        let a1 = (sec.k1 + sec.k2 + 1) as f64 * LN2;
        let eps1 = (a1 + (a1 * a1 + 8.0 * cf * a1).sqrt()) / (2.0 * cf);

        // Eq. (5): smallest ε₂ with C ≥ (k₂+1)(2+ε₂)ln2 / (f(1−f)ε₂²).
        let a2 = (sec.k2 + 1) as f64 * LN2;
        let eps2 = (a2 + (a2 * a2 + 8.0 * cf1 * a2).sqrt()) / (2.0 * cf1);

        let b1 = cf * (1.0 + eps1);
        let b2 = cf1 * (1.0 + eps2);
        let t_real = b1 + b2 + 1.0;

        // Eq. (6) lower bound on ε₃.
        let eps3 = (2.0 * sec.k3 as f64 * LN2 / (c_param * (1.0 - f) * (1.0 - f))).sqrt();
        if eps3 >= 1.0 {
            return None;
        }

        // Eq. (6) right inequality solved for the maximal δ.
        let delta = (1.0 - eps3) * (1.0 - f) * (1.0 - f) * c_param / (b1 + b2);
        if delta <= 1.0 {
            return None;
        }
        // δ = (1/2 + ε)/(1/2 − ε)  ⇒  ε = (δ−1)/(2(δ+1)).
        let eps = (delta - 1.0) / (2.0 * (delta + 1.0));

        let t = t_real.round() as u64;
        let c = (t as f64 / (0.5 - eps)).round() as u64;
        let c_prime = 2 * t;
        let k = (c as f64 * eps).floor() as u64;
        if k == 0 {
            return None;
        }
        Some(GapAnalysis { c_param, f, eps1, eps2, eps3, t, c, c_prime, eps, k })
    }

    /// The online-communication improvement factor over the gap-free
    /// protocol: the packed protocol amortizes each batch over `k`
    /// gates, so the per-gate online cost drops by `k`.
    pub fn improvement_factor(&self) -> u64 {
        self.k
    }

    /// The relative committee-size overhead `c/c′ − 1` paid for the gap.
    pub fn committee_overhead(&self) -> f64 {
        self.c as f64 / self.c_prime as f64 - 1.0
    }

    /// The fail-stop variant (§5.4): halve the packing factor to
    /// tolerate `⌊c·ε⌋` unresponsive honest parties.
    pub fn failstop_packing(&self) -> u64 {
        (self.c as f64 * self.eps / 2.0).floor() as u64
    }
}

/// The grids used by the paper's Table 1.
pub const TABLE1_C: [f64; 5] = [1000.0, 5000.0, 10000.0, 20000.0, 40000.0];
/// The corruption ratios of Table 1.
pub const TABLE1_F: [f64; 5] = [0.05, 0.10, 0.15, 0.20, 0.25];

/// One row of Table 1 (`None` = the paper's `⊥`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// Sortition parameter.
    pub c_param: f64,
    /// Global corruption ratio.
    pub f: f64,
    /// The analysis outcome, if feasible.
    pub analysis: Option<GapAnalysis>,
}

/// Regenerates the full Table 1 grid with the paper's security
/// parameters.
pub fn table1() -> Vec<Table1Row> {
    let sec = SecurityParams::default();
    let mut rows = Vec::new();
    for &c in &TABLE1_C {
        for &f in &TABLE1_F {
            rows.push(Table1Row { c_param: c, f, analysis: GapAnalysis::compute(c, f, sec) });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(c: f64, f: f64) -> Option<GapAnalysis> {
        GapAnalysis::compute(c, f, SecurityParams::default())
    }

    /// |got − want| ≤ tol (absolute, in units of the quantity).
    fn close(got: u64, want: u64, tol: u64) -> bool {
        got.abs_diff(want) <= tol
    }

    #[test]
    fn paper_table1_row_1000_005() {
        let a = get(1000.0, 0.05).unwrap();
        assert_eq!(a.t, 446);
        assert_eq!(a.c, 949);
        // Paper prints c' = 893 (from unrounded t); 2t = 892 with t = 446.
        assert!(close(a.c_prime, 893, 1), "c' {}", a.c_prime);
        assert!((a.eps - 0.03).abs() < 0.005, "eps {}", a.eps);
        assert!(close(a.k, 28, 1), "k {}", a.k);
    }

    #[test]
    fn paper_table1_infeasible_cells() {
        // C=1000 infeasible for f ≥ 0.1; C=5000 infeasible for f ≥ 0.2;
        // C=10000 infeasible for f = 0.25.
        assert!(get(1000.0, 0.10).is_none());
        assert!(get(1000.0, 0.25).is_none());
        assert!(get(5000.0, 0.20).is_none());
        assert!(get(5000.0, 0.25).is_none());
        assert!(get(10000.0, 0.25).is_none());
    }

    #[test]
    fn paper_table1_row_5000_005() {
        let a = get(5000.0, 0.05).unwrap();
        assert!(close(a.t, 1078, 2), "t {}", a.t);
        assert!(close(a.c, 4699, 10), "c {}", a.c);
        assert!((a.eps - 0.27).abs() < 0.01, "eps {}", a.eps);
        assert!(close(a.k, 1271, 10), "k {}", a.k);
    }

    #[test]
    fn paper_table1_row_20000_020() {
        // The headline ">1000× at 20% corruption" row.
        let a = get(20000.0, 0.2).unwrap();
        assert!(close(a.t, 9107, 10), "t {}", a.t);
        assert!(close(a.c, 20401, 40), "c {}", a.c);
        assert!(close(a.c_prime, 18215, 25), "c' {}", a.c_prime);
        assert!((a.eps - 0.05).abs() < 0.01, "eps {}", a.eps);
        assert!(a.k > 1000, "k {} should exceed 1000", a.k);
    }

    #[test]
    fn paper_table1_row_40000_025() {
        // Largest committee, narrowest feasible gap.
        let a = get(40000.0, 0.25).unwrap();
        assert!(close(a.t, 20408, 20), "t {}", a.t);
        assert!(close(a.c, 40911, 80), "c {}", a.c);
        // The paper's displayed ε (0.01) is inconsistent with its own
        // k = 47 = ⌊c·ε⌋, which implies ε ≈ 0.00115; we match on k.
        assert!(a.eps > 0.0 && a.eps < 0.01, "eps {}", a.eps);
        assert!(close(a.k, 47, 15), "k {}", a.k);
    }

    #[test]
    fn full_grid_feasibility_pattern_matches_paper() {
        let rows = table1();
        assert_eq!(rows.len(), 25);
        let feasible: Vec<bool> = rows.iter().map(|r| r.analysis.is_some()).collect();
        // Paper Table 1 pattern, row-major over (C × f).
        let expected = [
            true, false, false, false, false, // 1000
            true, true, true, false, false, // 5000
            true, true, true, true, false, // 10000
            true, true, true, true, false, // 20000
            true, true, true, true, true, // 40000
        ];
        assert_eq!(feasible, expected);
    }

    #[test]
    fn gap_monotonic_in_committee_size() {
        // Larger committees admit larger gaps at fixed f.
        let e1 = get(5000.0, 0.1).unwrap().eps;
        let e2 = get(10000.0, 0.1).unwrap().eps;
        let e3 = get(40000.0, 0.1).unwrap().eps;
        assert!(e1 < e2 && e2 < e3, "{e1} {e2} {e3}");
    }

    #[test]
    fn gap_decreasing_in_corruption() {
        let e1 = get(20000.0, 0.05).unwrap().eps;
        let e2 = get(20000.0, 0.15).unwrap().eps;
        let e3 = get(20000.0, 0.2).unwrap().eps;
        assert!(e1 > e2 && e2 > e3, "{e1} {e2} {e3}");
    }

    #[test]
    fn committee_overhead_is_marginal() {
        // The paper's point: enabling the gap costs only a marginally
        // larger committee. At (20000, 0.2): c/c' − 1 ≈ 12%.
        let a = get(20000.0, 0.2).unwrap();
        assert!(a.committee_overhead() < 0.15, "overhead {}", a.committee_overhead());
        // While the online saving is >1000×.
        assert!(a.improvement_factor() > 1000);
    }

    #[test]
    fn failstop_packing_is_half() {
        let a = get(20000.0, 0.1).unwrap();
        let full = a.k;
        let fs = a.failstop_packing();
        assert!(fs >= full / 2 - 1 && fs <= full / 2 + 1, "full {full}, failstop {fs}");
    }

    #[test]
    fn derived_quantities_consistent() {
        for row in table1() {
            if let Some(a) = row.analysis {
                assert!(a.eps > 0.0 && a.eps < 0.5);
                assert!(a.t as f64 <= a.c as f64 * (0.5 - a.eps) + 1.0);
                assert_eq!(a.c_prime, 2 * a.t);
                assert!(a.k as f64 <= a.c as f64 * a.eps);
                assert!(a.eps1 > 0.0 && a.eps2 > 0.0 && a.eps3 > 0.0 && a.eps3 < 1.0);
            }
        }
    }

    #[test]
    #[should_panic(expected = "corruption ratio")]
    fn invalid_f_panics() {
        let _ = GapAnalysis::compute(1000.0, 0.0, SecurityParams::default());
    }
}
