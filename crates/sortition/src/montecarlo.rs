//! Monte-Carlo validation of the sortition tail bounds (experiment E6).
//!
//! The analytic bounds guarantee failure probabilities of `2^{−128}`,
//! which no simulation can observe. Instead we recompute the analysis
//! at *reduced* security parameters (e.g. `k₂ = k₃ ≈ 7`, bound
//! `2^{−7} ≈ 0.8%`) and check that the empirical failure rate over many
//! sampled committees stays below the bound — evidence that the
//! (conservative) Chernoff analysis is implemented correctly.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{GapAnalysis, SecurityParams};

/// Outcome of a Monte-Carlo validation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct McReport {
    /// Number of sampled committees.
    pub trials: u64,
    /// Trials where the corrupt count reached `t` (bound event 2).
    pub corruption_failures: u64,
    /// Trials where the selected honest count fell below the analysis's
    /// Chernoff floor `(1−ε₃)(1−f)²·C` (bound event 3 — the tail the
    /// paper's Eq. (3) first term controls).
    pub size_failures: u64,
    /// The analysis the trials were checked against.
    pub analysis: GapAnalysis,
}

impl McReport {
    /// Empirical probability of the corruption bound failing.
    pub fn corruption_rate(&self) -> f64 {
        self.corruption_failures as f64 / self.trials as f64
    }

    /// Empirical probability of the size bound failing.
    pub fn size_rate(&self) -> f64 {
        self.size_failures as f64 / self.trials as f64
    }
}

/// Samples `trials` committees from a pool of `n_global` parties with
/// corruption ratio `f` and sortition parameter `c_param`, counting
/// violations of the bounds derived at security `sec`.
///
/// Returns `None` if the analysis itself is infeasible at these
/// parameters.
pub fn validate<R: Rng + ?Sized>(
    rng: &mut R,
    n_global: u64,
    c_param: f64,
    f: f64,
    sec: SecurityParams,
    trials: u64,
) -> Option<McReport> {
    let analysis = GapAnalysis::compute(c_param, f, sec)?;
    let honest_floor = (1.0 - analysis.eps3) * (1.0 - f) * (1.0 - f) * c_param;
    let mut corruption_failures = 0;
    let mut size_failures = 0;
    for _ in 0..trials {
        let committee = yoso_runtime_stub::sample(rng, n_global, f, c_param);
        if committee.corrupt as u64 >= analysis.t {
            corruption_failures += 1;
        }
        let honest = (committee.size - committee.corrupt) as f64;
        if honest < honest_floor {
            size_failures += 1;
        }
    }
    Some(McReport { trials, corruption_failures, size_failures, analysis })
}

/// A local re-implementation of the committee sampler so this crate
/// stays dependency-free of the runtime (the runtime's sampler is
/// cross-checked against this one in the integration tests).
mod yoso_runtime_stub {
    use rand::Rng;

    pub struct Sampled {
        pub size: usize,
        pub corrupt: usize,
    }

    pub fn sample<R: Rng + ?Sized>(rng: &mut R, n_global: u64, f: f64, c_param: f64) -> Sampled {
        let p = c_param / n_global as f64;
        let corrupt_pool = (f * n_global as f64).round() as u64;
        let honest_pool = n_global - corrupt_pool;
        let corrupt = gaussian_binomial(rng, corrupt_pool, p);
        let honest = gaussian_binomial(rng, honest_pool, p);
        Sampled { size: (corrupt + honest) as usize, corrupt: corrupt as usize }
    }

    fn gaussian_binomial<R: Rng + ?Sized>(rng: &mut R, n: u64, p: f64) -> u64 {
        if n == 0 || p <= 0.0 {
            return 0;
        }
        let mean = n as f64 * p;
        let sd = (mean * (1.0 - p)).sqrt();
        if n <= 4096 {
            let mut count = 0;
            for _ in 0..n {
                if rng.gen::<f64>() < p {
                    count += 1;
                }
            }
            return count;
        }
        let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (mean + z * sd).round().clamp(0.0, n as f64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn bounds_hold_empirically_at_reduced_security() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        // Reduced security: failure bounds 2^-8 ≈ 0.4%.
        let sec = SecurityParams { k1: 4, k2: 8, k3: 8 };
        let report =
            validate(&mut rng, 1_000_000, 2000.0, 0.1, sec, 2000).expect("feasible");
        // The Chernoff bounds are conservative; empirical rates should
        // be well below the nominal 2^-8.
        assert!(report.corruption_rate() < 0.004, "corruption rate {}", report.corruption_rate());
        assert!(report.size_rate() < 0.004, "size rate {}", report.size_rate());
    }

    #[test]
    fn infeasible_returns_none() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(43);
        let sec = SecurityParams::default();
        assert!(validate(&mut rng, 1_000_000, 1000.0, 0.25, sec, 10).is_none());
    }

    #[test]
    fn tight_parameters_fail_more_often_than_loose() {
        // Sanity: with a *larger* t (looser bound, higher security
        // margin) the corruption bound fails less often.
        let mut rng = rand::rngs::StdRng::seed_from_u64(44);
        let loose = SecurityParams { k1: 4, k2: 16, k3: 8 };
        let tight = SecurityParams { k1: 1, k2: 2, k3: 8 };
        let r_loose = validate(&mut rng, 1_000_000, 2000.0, 0.1, loose, 1500).unwrap();
        let r_tight = validate(&mut rng, 1_000_000, 2000.0, 0.1, tight, 1500).unwrap();
        assert!(r_loose.analysis.t > r_tight.analysis.t);
        assert!(r_loose.corruption_failures <= r_tight.corruption_failures);
    }
}
