//! Adversarial view accounting.
//!
//! The ideal functionality (§2) distinguishes `Malicious` and `Leaky`
//! roles: both hand their entire view to the adversary. This module
//! records which *secret objects* (shares of a packed sharing, shares
//! of `tsk`, KFF secrets) each corrupted role exposes, so tests and
//! experiments can check the protocol's privacy budget **by counting**:
//! a degree-`d` packed sharing with `k` secrets keeps them
//! information-theoretically hidden as long as the adversary sees at
//! most `d − k + 1` of its shares.

use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::role::RoleId;

/// One exposure: a corrupted role revealed its piece of a secret object.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LeakEntry {
    /// The corrupted (malicious or leaky) role.
    pub role: RoleId,
    /// The secret object, e.g. `"batch3/alpha"`, `"tsk/epoch2"`.
    pub object: String,
    /// Which share/piece of the object (usually the member index).
    pub piece: usize,
}

/// A shared, append-only log of adversarial exposures.
#[derive(Debug, Clone, Default)]
pub struct LeakLog {
    inner: Arc<RwLock<Vec<LeakEntry>>>,
}

impl LeakLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an exposure.
    pub fn record(&self, role: RoleId, object: impl Into<String>, piece: usize) {
        self.inner.write().push(LeakEntry { role, object: object.into(), piece });
    }

    /// All entries (clones).
    pub fn entries(&self) -> Vec<LeakEntry> {
        self.inner.read().clone()
    }

    /// Number of *distinct* pieces exposed per object.
    pub fn pieces_per_object(&self) -> BTreeMap<String, usize> {
        let mut sets: BTreeMap<String, std::collections::BTreeSet<usize>> = BTreeMap::new();
        for e in self.inner.read().iter() {
            sets.entry(e.object.clone()).or_default().insert(e.piece);
        }
        sets.into_iter().map(|(k, v)| (k, v.len())).collect()
    }

    /// The largest distinct-piece count over all objects (the worst-case
    /// exposure the adversary achieved).
    pub fn max_exposure(&self) -> usize {
        self.pieces_per_object().values().copied().max().unwrap_or(0)
    }

    /// Total entries recorded.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// Whether nothing leaked.
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_aggregates() {
        let log = LeakLog::new();
        log.record(RoleId::new("c", 0), "batch0/alpha", 0);
        log.record(RoleId::new("c", 2), "batch0/alpha", 2);
        log.record(RoleId::new("c", 2), "batch0/alpha", 2); // duplicate piece
        log.record(RoleId::new("c", 1), "tsk/epoch0", 1);
        let per = log.pieces_per_object();
        assert_eq!(per["batch0/alpha"], 2);
        assert_eq!(per["tsk/epoch0"], 1);
        assert_eq!(log.max_exposure(), 2);
        assert_eq!(log.len(), 4);
        assert!(!log.is_empty());
    }

    #[test]
    fn clones_share_state() {
        let log = LeakLog::new();
        let log2 = log.clone();
        log.record(RoleId::new("c", 0), "x", 0);
        assert_eq!(log2.len(), 1);
    }

    #[test]
    fn empty_log() {
        let log = LeakLog::new();
        assert_eq!(log.max_exposure(), 0);
        assert!(log.is_empty());
    }
}
