//! Roles, committees and the speak-once discipline.

use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::adversary::Behavior;

/// Identity of a role: a committee label plus the member index.
///
/// The committee label is reference-counted so cloning a `RoleId` —
/// which batched board posting does once per record — is a refcount
/// bump, not a string allocation.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RoleId {
    /// The committee this role belongs to (e.g. `"off-1"`, `"on-3"`).
    pub committee: Arc<str>,
    /// 0-based index within the committee.
    pub index: usize,
}

impl RoleId {
    /// Creates a role id.
    pub fn new(committee: impl Into<String>, index: usize) -> Self {
        RoleId { committee: Arc::from(committee.into()), index }
    }
}

impl fmt::Display for RoleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.committee, self.index)
    }
}

/// Error returned when a role tries to speak twice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpokeError {
    /// The role that violated the discipline.
    pub role: RoleId,
}

impl fmt::Display for SpokeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "role {} has already spoken", self.role)
    }
}

impl std::error::Error for SpokeError {}

/// The speak-once token of a role: consumed by the role's single
/// broadcast ("Spoke" in the YOSO wrapper). After speaking, the role's
/// state must be erased; [`SpeakOnce::speak`] consumes the token so the
/// compiler enforces the discipline, and the runtime records the event
/// so violations by hand-rolled adversarial code are caught at runtime
/// too.
#[derive(Debug)]
pub struct SpeakOnce {
    role: RoleId,
    spoken: bool,
}

impl SpeakOnce {
    /// Issues the token for a role.
    pub fn new(role: RoleId) -> Self {
        SpeakOnce { role, spoken: false }
    }

    /// The role this token belongs to.
    pub fn role(&self) -> &RoleId {
        &self.role
    }

    /// Whether the role has already spoken.
    pub fn has_spoken(&self) -> bool {
        self.spoken
    }

    /// Consumes the single permission to speak.
    ///
    /// # Errors
    ///
    /// Returns [`SpokeError`] if the role already spoke.
    pub fn speak(&mut self) -> Result<RoleId, SpokeError> {
        if self.spoken {
            return Err(SpokeError { role: self.role.clone() });
        }
        self.spoken = true;
        Ok(self.role.clone())
    }
}

/// A committee of `n` roles with the adversary's per-role behaviors.
#[derive(Debug, Clone)]
pub struct Committee {
    /// The committee label (also the committee part of member roles).
    pub name: String,
    /// Per-member behavior, as assigned by the adversary.
    pub behaviors: Vec<Behavior>,
}

impl Committee {
    /// Creates a fully honest committee.
    pub fn honest(name: impl Into<String>, n: usize) -> Self {
        Committee { name: name.into(), behaviors: vec![Behavior::Honest; n] }
    }

    /// Creates a committee with explicit behaviors.
    pub fn with_behaviors(name: impl Into<String>, behaviors: Vec<Behavior>) -> Self {
        Committee { name: name.into(), behaviors }
    }

    /// Committee size.
    pub fn n(&self) -> usize {
        self.behaviors.len()
    }

    /// The role id of member `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn role(&self, i: usize) -> RoleId {
        assert!(i < self.n(), "member index out of range");
        RoleId::new(self.name.clone(), i)
    }

    /// The behavior of member `i`.
    pub fn behavior(&self, i: usize) -> &Behavior {
        &self.behaviors[i]
    }

    /// Indices of actively malicious members.
    pub fn malicious(&self) -> Vec<usize> {
        self.behaviors
            .iter()
            .enumerate()
            .filter(|(_, b)| b.is_malicious())
            .map(|(i, _)| i)
            .collect()
    }

    /// Indices of members that crash at or before `phase`.
    pub fn crashed_by(&self, phase: u64) -> Vec<usize> {
        self.behaviors
            .iter()
            .enumerate()
            .filter(|(_, b)| matches!(b, Behavior::FailStop { crash_phase } if *crash_phase <= phase))
            .map(|(i, _)| i)
            .collect()
    }

    /// Number of corrupted (malicious) members.
    pub fn corruption_count(&self) -> usize {
        self.malicious().len()
    }

    /// Issues speak-once tokens for all members.
    pub fn tokens(&self) -> Vec<SpeakOnce> {
        (0..self.n()).map(|i| SpeakOnce::new(self.role(i))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::ActiveAttack;

    #[test]
    fn role_id_display() {
        let r = RoleId::new("off-1", 3);
        assert_eq!(r.to_string(), "off-1[3]");
    }

    #[test]
    fn speak_once_enforced() {
        let mut token = SpeakOnce::new(RoleId::new("c", 0));
        assert!(!token.has_spoken());
        assert!(token.speak().is_ok());
        assert!(token.has_spoken());
        let err = token.speak().unwrap_err();
        assert_eq!(err.role, RoleId::new("c", 0));
    }

    #[test]
    fn committee_queries() {
        let behaviors = vec![
            Behavior::Honest,
            Behavior::Malicious(ActiveAttack::WrongValue),
            Behavior::FailStop { crash_phase: 2 },
            Behavior::Leaky,
            Behavior::Malicious(ActiveAttack::Silent),
        ];
        let c = Committee::with_behaviors("on-1", behaviors);
        assert_eq!(c.n(), 5);
        assert_eq!(c.malicious(), vec![1, 4]);
        assert_eq!(c.corruption_count(), 2);
        assert_eq!(c.crashed_by(1), Vec::<usize>::new());
        assert_eq!(c.crashed_by(2), vec![2]);
        assert_eq!(c.role(1), RoleId::new("on-1", 1));
    }

    #[test]
    fn honest_committee_has_no_corruption() {
        let c = Committee::honest("c1", 10);
        assert_eq!(c.corruption_count(), 0);
        assert_eq!(c.tokens().len(), 10);
    }
}
