//! Committee sampling by cryptographic sortition (simulation).
//!
//! Benhamouda et al.'s role assignment selects each of the `N` global
//! parties into a committee independently with probability `C/N`,
//! where `C` is the sortition parameter (the *expected* committee
//! size). With `f·N` globally corrupt parties, the number of corrupt
//! committee members is binomial.
//!
//! This module simulates that process (the analytic tail bounds live
//! in the `yoso-sortition` crate, which this simulator validates by
//! Monte Carlo in experiment E6).

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Outcome of sampling one committee from the global pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SampledCommittee {
    /// Actual committee size `c` (random, expectation `C`).
    pub size: usize,
    /// Number of corrupt members `φ` in the committee.
    pub corrupt: usize,
}

impl SampledCommittee {
    /// The realized corruption ratio `φ/c` (zero for an empty committee).
    pub fn corruption_ratio(&self) -> f64 {
        if self.size == 0 {
            0.0
        } else {
            self.corrupt as f64 / self.size as f64
        }
    }
}

/// Samples a committee: each of `n_global` parties joins independently
/// with probability `c_param / n_global`; a fixed `f` fraction of the
/// pool is corrupt.
///
/// Uses two binomial draws (corrupt and honest subpopulations) rather
/// than iterating the whole pool, so it is cheap even for
/// `n_global = 10^7`.
///
/// # Panics
///
/// Panics unless `0 ≤ f ≤ 1` and `c_param ≤ n_global as f64`.
pub fn sample_committee<R: Rng + ?Sized>(
    rng: &mut R,
    n_global: u64,
    f: f64,
    c_param: f64,
) -> SampledCommittee {
    assert!((0.0..=1.0).contains(&f), "corruption ratio out of range");
    assert!(c_param >= 0.0 && c_param <= n_global as f64, "sortition parameter out of range");
    let p = c_param / n_global as f64;
    let corrupt_pool = (f * n_global as f64).round() as u64;
    let honest_pool = n_global - corrupt_pool;
    let corrupt = binomial(rng, corrupt_pool, p);
    let honest = binomial(rng, honest_pool, p);
    SampledCommittee { size: (corrupt + honest) as usize, corrupt: corrupt as usize }
}

/// Samples `Binomial(n, p)`.
///
/// Uses exact Bernoulli summation for small `n` and a Gaussian
/// approximation with continuity correction for large `n` (the regime
/// where it is accurate to far better than the tail-bound slack we
/// validate against).
pub fn binomial<R: Rng + ?Sized>(rng: &mut R, n: u64, p: f64) -> u64 {
    if n == 0 || p <= 0.0 {
        return 0;
    }
    if p >= 1.0 {
        return n;
    }
    let mean = n as f64 * p;
    let var = mean * (1.0 - p);
    if n <= 4096 {
        let mut count = 0u64;
        for _ in 0..n {
            if rng.gen::<f64>() < p {
                count += 1;
            }
        }
        return count;
    }
    // Box–Muller Gaussian approximation.
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    let sample = mean + z * var.sqrt();
    sample.round().clamp(0.0, n as f64) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn binomial_small_matches_mean() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let trials = 2000;
        let mut total = 0u64;
        for _ in 0..trials {
            total += binomial(&mut rng, 100, 0.3);
        }
        let mean = total as f64 / trials as f64;
        assert!((mean - 30.0).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn binomial_large_matches_mean_and_spread() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let trials = 2000;
        let n = 1_000_000u64;
        let p = 0.001; // mean 1000, sd ~31.6
        let mut total = 0f64;
        let mut sq = 0f64;
        for _ in 0..trials {
            let s = binomial(&mut rng, n, p) as f64;
            total += s;
            sq += s * s;
        }
        let mean = total / trials as f64;
        let var = sq / trials as f64 - mean * mean;
        assert!((mean - 1000.0).abs() < 5.0, "mean {mean}");
        assert!((var.sqrt() - 31.6).abs() < 3.0, "sd {}", var.sqrt());
    }

    #[test]
    fn binomial_edge_cases() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        assert_eq!(binomial(&mut rng, 0, 0.5), 0);
        assert_eq!(binomial(&mut rng, 100, 0.0), 0);
        assert_eq!(binomial(&mut rng, 100, 1.0), 100);
    }

    #[test]
    fn committee_sampling_statistics() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let trials = 500;
        let mut sizes = 0usize;
        let mut ratios = 0f64;
        for _ in 0..trials {
            let c = sample_committee(&mut rng, 1_000_000, 0.2, 1000.0);
            sizes += c.size;
            ratios += c.corruption_ratio();
        }
        let avg_size = sizes as f64 / trials as f64;
        let avg_ratio = ratios / trials as f64;
        assert!((avg_size - 1000.0).abs() < 15.0, "avg size {avg_size}");
        assert!((avg_ratio - 0.2).abs() < 0.01, "avg ratio {avg_ratio}");
    }

    #[test]
    fn empty_committee_ratio_is_zero() {
        let c = SampledCommittee { size: 0, corrupt: 0 };
        assert_eq!(c.corruption_ratio(), 0.0);
    }
}
