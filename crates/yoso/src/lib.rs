//! The YOSO execution model: roles, committees, the bulletin board,
//! adversaries and communication metering.
//!
//! The paper's model (§2): computation is performed by *roles* grouped
//! into committees; each role speaks **once** (posting to a broadcast
//! channel — in YOSO, broadcast costs the same as point-to-point) and
//! is then killed, its state erased. A *role-assignment* layer maps
//! roles to physical machines; the adversary corrupts a random `τ`
//! fraction of computation roles and arbitrarily chosen input/output
//! roles, and may also *fail-stop* honest roles (the paper's §5.4
//! extension).
//!
//! This crate simulates that model in-process:
//!
//! - [`RoleId`] / [`SpeakOnce`]: role identities and the
//!   speak-once discipline (a role's token is consumed by its single
//!   broadcast; the type system enforces the `Spoke` semantics).
//! - [`Committee`]: a committee of `n` roles with per-role
//!   [`Behavior`] assigned by the [`adversary`] module (honest, leaky,
//!   active strategies, fail-stop crash schedules).
//! - [`BulletinBoard`]: the authenticated broadcast channel, recording
//!   every posting with its size so experiments can *measure* (not
//!   estimate) communication in ring elements and bytes.
//! - [`metrics::CommMeter`]: aggregation of posted traffic by protocol
//!   phase and category, with per-gate normalization used by the
//!   experiment harness.
//! - [`sortition`]: the committee-sampling simulator (each of `N`
//!   parties joins a committee with probability `C/N`; corrupt parties
//!   are a random `f` fraction), matching the model analyzed in §6.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod board;
pub(crate) mod frame;
pub mod metrics;
pub mod role;
pub mod sortition;
pub mod tcp;
pub mod transport;
pub mod views;

pub use adversary::{ActiveAttack, Adversary, Behavior};
pub use board::{phases_from_postings, BoardCursor, BulletinBoard, PhaseAccumulator, Posting};
pub use metrics::{CommMeter, PhaseStats};
pub use role::{Committee, RoleId, SpeakOnce, SpokeError};
pub use tcp::{BoardServer, ServerHandle, ServerWireStats, TcpOptions, TcpTransport, WireStats};
pub use transport::{BoardError, BoardTransport, InProcessTransport, PostRecord, WireMessage};
pub use views::{LeakEntry, LeakLog};
