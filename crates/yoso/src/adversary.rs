//! Adversary modelling: corruption sampling and misbehavior strategies.
//!
//! The paper's threat model: the environment corrupts a uniformly
//! random fraction `τ` of computation roles (chosen corruption applies
//! only to input/output roles), and — in the §5.4 extension —
//! additionally fail-stops up to `n·ε` honest roles.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::role::Committee;

/// What an actively corrupted role does when its turn comes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ActiveAttack {
    /// Publish a uniformly random wrong value in place of the correct
    /// one (with a proof that cannot verify).
    WrongValue,
    /// Publish the correct value but a garbage proof.
    BadProof,
    /// Publish nothing at all.
    Silent,
    /// Publish a value crafted to shift the reconstructed result by a
    /// fixed offset (tests additive-attack resilience).
    AdditiveOffset,
}

/// The behavior of a single role.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Behavior {
    /// Follows the protocol; state is private.
    Honest,
    /// Follows the protocol but leaks its view to the adversary
    /// (semi-honest / "Leaky" in the ideal functionality).
    Leaky,
    /// Actively malicious with the given strategy.
    Malicious(ActiveAttack),
    /// Honest but crashes (stops posting) from `crash_phase` onwards —
    /// the paper's fail-stop party.
    FailStop {
        /// The phase index from which the role is unresponsive.
        crash_phase: u64,
    },
}

impl Behavior {
    /// Whether this role counts towards the corruption threshold `t`.
    pub fn is_malicious(&self) -> bool {
        matches!(self, Behavior::Malicious(_))
    }

    /// Whether the role participates (posts) at `phase`.
    pub fn participates_at(&self, phase: u64) -> bool {
        match self {
            Behavior::FailStop { crash_phase } => phase < *crash_phase,
            Behavior::Malicious(ActiveAttack::Silent) => false,
            _ => true,
        }
    }
}

/// An adversary configuration: how committees get corrupted.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Adversary {
    /// Number of actively malicious roles per committee.
    pub malicious_per_committee: usize,
    /// Strategy assigned to malicious roles.
    pub attack: ActiveAttack,
    /// Number of additional fail-stop roles per committee.
    pub failstop_per_committee: usize,
    /// Phase at which fail-stop roles crash.
    pub crash_phase: u64,
    /// Number of additional leaky (semi-honest) roles per committee.
    pub leaky_per_committee: usize,
}

impl Adversary {
    /// A passive adversary: no corruption at all.
    pub fn none() -> Self {
        Adversary {
            malicious_per_committee: 0,
            attack: ActiveAttack::WrongValue,
            failstop_per_committee: 0,
            crash_phase: 0,
            leaky_per_committee: 0,
        }
    }

    /// An active adversary with `t` malicious roles per committee.
    pub fn active(t: usize, attack: ActiveAttack) -> Self {
        Adversary {
            malicious_per_committee: t,
            attack,
            failstop_per_committee: 0,
            crash_phase: 0,
            leaky_per_committee: 0,
        }
    }

    /// Adds fail-stop corruption.
    pub fn with_failstops(mut self, count: usize, crash_phase: u64) -> Self {
        self.failstop_per_committee = count;
        self.crash_phase = crash_phase;
        self
    }

    /// Adds leaky (semi-honest) corruption.
    pub fn with_leaky(mut self, count: usize) -> Self {
        self.leaky_per_committee = count;
        self
    }

    /// Samples a committee of size `n` under this adversary: corruption
    /// is assigned to *uniformly random* members (the YOSO model —
    /// role assignment hides identities, so the adversary's hits are
    /// random).
    ///
    /// # Panics
    ///
    /// Panics if the corruption counts exceed `n`.
    pub fn sample_committee<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        name: impl Into<String>,
        n: usize,
    ) -> Committee {
        let total =
            self.malicious_per_committee + self.failstop_per_committee + self.leaky_per_committee;
        assert!(total <= n, "corruption ({total}) exceeds committee size ({n})");
        let mut indices: Vec<usize> = (0..n).collect();
        indices.shuffle(rng);
        let mut behaviors = vec![Behavior::Honest; n];
        let mut it = indices.into_iter();
        for _ in 0..self.malicious_per_committee {
            behaviors[it.next().unwrap()] = Behavior::Malicious(self.attack);
        }
        for _ in 0..self.failstop_per_committee {
            behaviors[it.next().unwrap()] = Behavior::FailStop { crash_phase: self.crash_phase };
        }
        for _ in 0..self.leaky_per_committee {
            behaviors[it.next().unwrap()] = Behavior::Leaky;
        }
        Committee::with_behaviors(name, behaviors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn behavior_predicates() {
        assert!(Behavior::Malicious(ActiveAttack::WrongValue).is_malicious());
        assert!(!Behavior::Honest.is_malicious());
        assert!(!Behavior::Leaky.is_malicious());
        assert!(!Behavior::FailStop { crash_phase: 0 }.is_malicious());

        let fs = Behavior::FailStop { crash_phase: 3 };
        assert!(fs.participates_at(2));
        assert!(!fs.participates_at(3));
        assert!(!fs.participates_at(10));
        assert!(!Behavior::Malicious(ActiveAttack::Silent).participates_at(0));
        assert!(Behavior::Honest.participates_at(100));
    }

    #[test]
    fn sampling_respects_counts() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let adv = Adversary::active(3, ActiveAttack::WrongValue)
            .with_failstops(2, 1)
            .with_leaky(1);
        let c = adv.sample_committee(&mut rng, "c", 10);
        assert_eq!(c.corruption_count(), 3);
        assert_eq!(c.crashed_by(1).len(), 2);
        assert_eq!(
            c.behaviors.iter().filter(|b| matches!(b, Behavior::Leaky)).count(),
            1
        );
        assert_eq!(
            c.behaviors.iter().filter(|b| matches!(b, Behavior::Honest)).count(),
            4
        );
    }

    #[test]
    fn sampling_positions_are_random() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let adv = Adversary::active(1, ActiveAttack::WrongValue);
        let mut positions = std::collections::HashSet::new();
        for _ in 0..50 {
            let c = adv.sample_committee(&mut rng, "c", 10);
            positions.insert(c.malicious()[0]);
        }
        assert!(positions.len() > 3, "malicious index should vary: {positions:?}");
    }

    #[test]
    #[should_panic(expected = "exceeds committee size")]
    fn oversized_corruption_panics() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        Adversary::active(11, ActiveAttack::WrongValue).sample_committee(&mut rng, "c", 10);
    }
}
