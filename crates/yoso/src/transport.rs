//! Pluggable bulletin-board transports.
//!
//! The YOSO bulletin board is the protocol's *single* communication
//! channel (§3.3: broadcast costs the same as point-to-point), so the
//! board's storage and delivery mechanism is the natural seam for
//! scaling the simulation beyond one process. [`BoardTransport`]
//! abstracts that seam: the [`crate::BulletinBoard`] façade keeps its
//! metering and audit semantics while the transport decides *where*
//! postings live —
//!
//! - [`InProcessTransport`]: the in-memory backend, with **round-indexed
//!   storage** (a `round_starts` index mapping each round to its slice
//!   of the posting log) so round-scoped reads are `O(round size)` and
//!   iteration never clones history;
//! - [`crate::tcp::TcpTransport`]: a length-prefix-framed TCP client
//!   talking to a `board-server` process, so committee drivers and
//!   auditors can run as separate OS processes.
//!
//! Every backend must deliver the same **total order** of postings:
//! posts are sequenced by the backend (append order in-process, server
//! arrival order over TCP), and a driver posting from a single logical
//! thread therefore observes byte-identical transcripts over any
//! backend — the transport-parity suite in `yoso-core` pins this.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::board::Posting;
use crate::role::RoleId;

/// Errors surfaced by a board transport.
///
/// The in-process backend is infallible; TCP backends fail on I/O and
/// protocol violations. The protocol layers treat any transport error
/// as fatal for the run (the board is the only channel — without it no
/// progress is possible).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BoardError {
    /// An I/O failure talking to a remote board (after retries).
    Io(String),
    /// The peer violated the wire protocol (bad frame, bad opcode,
    /// undecodable payload).
    Protocol(String),
}

impl std::fmt::Display for BoardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BoardError::Io(msg) => write!(f, "board transport I/O error: {msg}"),
            BoardError::Protocol(msg) => write!(f, "board wire-protocol error: {msg}"),
        }
    }
}

impl std::error::Error for BoardError {}

/// A board post as submitted by a client: everything a [`Posting`]
/// carries except the round, which the transport assigns at append
/// time (server-side sequencing keeps multi-process runs deterministic).
///
/// `elements`/`bytes` are the metered size of the post; they travel
/// with the posting so remote readers (auditor processes) can rebuild
/// the communication meter without access to the poster's.
#[derive(Debug, Clone)]
pub struct PostRecord<M> {
    /// The author role.
    pub from: RoleId,
    /// The protocol phase the post is metered under.
    pub phase: Arc<str>,
    /// The message payload.
    pub message: M,
    /// Metered size in ring elements.
    pub elements: u64,
    /// Metered size in bytes.
    pub bytes: u64,
}

/// The transport behind a [`crate::BulletinBoard`]: append-only posting
/// storage with a round clock and round-scoped reads.
///
/// # Ordering contract
///
/// `post_batch` appends all records of one call **atomically and in
/// order** (one lock acquisition in-process, one frame over TCP); the
/// backend assigns each record the current round and a global sequence
/// number in arrival order. Two backends fed the same call sequence
/// from a single thread produce identical posting logs.
pub trait BoardTransport<M>: Send + Sync {
    /// Appends a batch of records atomically, tagging each with the
    /// current round, in the order given.
    fn post_batch(&self, records: Vec<PostRecord<M>>) -> Result<(), BoardError>;

    /// Streaming variant of [`BoardTransport::post_batch`]: drains the
    /// iterator straight into the log (or wire frame) without building
    /// an intermediate `Vec`, and returns how many records were
    /// appended. The atomicity and ordering contract is the same — the
    /// whole stream lands under one lock acquisition / in one frame.
    ///
    /// # Errors
    ///
    /// Propagates transport failures (remote backends only).
    fn post_stream(
        &self,
        records: &mut dyn Iterator<Item = PostRecord<M>>,
    ) -> Result<u64, BoardError> {
        let batch: Vec<PostRecord<M>> = records.collect();
        let n = batch.len() as u64;
        self.post_batch(batch)?;
        Ok(n)
    }

    /// Uniform-batch fast path: appends every message of the slice as
    /// a posting from one role under one phase with one metered size —
    /// the hot path of [`crate::BulletinBoard::post_batch`]. Backends
    /// with local storage override this to build postings in place
    /// with a fully monomorphic loop (no per-record virtual dispatch).
    /// Same atomicity contract as [`BoardTransport::post_batch`].
    ///
    /// # Errors
    ///
    /// Propagates transport failures (remote backends only).
    fn post_slice(
        &self,
        from: &RoleId,
        phase: &Arc<str>,
        messages: &[M],
        elements: u64,
        bytes: u64,
    ) -> Result<(), BoardError>
    where
        M: Clone,
    {
        self.post_stream(&mut messages.iter().map(|message| PostRecord {
            from: from.clone(),
            phase: Arc::clone(phase),
            message: message.clone(),
            elements,
            bytes,
        }))
        .map(|_| ())
    }

    /// Advances the synchronous round clock; returns the new round.
    fn advance_round(&self) -> Result<u64, BoardError>;

    /// The current round.
    fn round(&self) -> Result<u64, BoardError>;

    /// Total number of postings so far.
    fn len(&self) -> Result<usize, BoardError>;

    /// Whether the board holds no postings yet.
    ///
    /// # Errors
    ///
    /// Propagates transport failures (remote backends only).
    fn is_empty(&self) -> Result<bool, BoardError> {
        Ok(self.len()? == 0)
    }

    /// All postings made in `round` (clones of that round's slice
    /// only — `O(round size)`).
    fn read_round(&self, round: u64) -> Result<Vec<Posting<M>>, BoardError>;

    /// All postings with sequence number `>= cursor` (the cursor-based
    /// subscription primitive — readers resume where they left off and
    /// never re-read or re-clone history).
    fn read_from(&self, cursor: usize) -> Result<Vec<Posting<M>>, BoardError>;

    /// Applies `f` to every posting in order. Backends with local
    /// storage override this to iterate without cloning.
    fn for_each(&self, f: &mut dyn FnMut(&Posting<M>)) -> Result<(), BoardError> {
        for p in self.read_from(0)? {
            f(&p);
        }
        Ok(())
    }

    /// Applies `f` to every posting of `round` in order. Backends with
    /// local storage override this to iterate without cloning.
    fn for_each_in_round(
        &self,
        round: u64,
        f: &mut dyn FnMut(&Posting<M>),
    ) -> Result<(), BoardError> {
        for p in self.read_round(round)? {
            f(&p);
        }
        Ok(())
    }

    /// Drops all postings of sealed rounds before `round` — the
    /// **retention watermark** of the streaming driver, which consumes
    /// each round incrementally and then releases it. Sequence numbers
    /// and the round clock are unaffected (`len()` keeps counting
    /// dropped postings, so cursor-synchronised readers are
    /// undisturbed), but reads that dip below the watermark fail with
    /// [`BoardError::Protocol`]. Backends without local storage ignore
    /// the request.
    ///
    /// # Errors
    ///
    /// Propagates transport failures (remote backends only).
    fn retain_rounds_from(&self, _round: u64) -> Result<(), BoardError> {
        Ok(())
    }

    /// A short human-readable backend label (diagnostics, bench tables).
    fn backend_name(&self) -> &'static str;
}

/// Round-indexed in-memory posting storage shared by the in-process
/// transport and (in raw-payload form) the TCP server: an append-only
/// log plus `round_starts`, where `round_starts[r]` is the log index
/// of round `r`'s first posting. Round `r` occupies
/// `round_starts[r] .. round_starts[r+1]` (or the log end for the
/// current round), so round-scoped reads touch exactly that slice.
#[derive(Debug)]
pub(crate) struct RoundLog<P> {
    pub(crate) postings: Vec<P>,
    pub(crate) round_starts: Vec<usize>,
    pub(crate) round: u64,
    /// Retention watermark: number of postings dropped from the front
    /// of the log. Sequence numbers, `round_starts` and cursors stay
    /// *absolute* — `postings[0]` is absolute index `base` — so
    /// readers above the watermark are unaffected by drops below it.
    pub(crate) base: usize,
}

impl<P> Default for RoundLog<P> {
    fn default() -> Self {
        RoundLog { postings: Vec::new(), round_starts: vec![0], round: 0, base: 0 }
    }
}

impl<P> RoundLog<P> {
    /// Total postings ever appended (dropped ones included) — the
    /// sequence number the next posting will get.
    pub(crate) fn abs_len(&self) -> usize {
        self.base + self.postings.len()
    }

    /// The `[lo, hi)` **absolute** log range holding round `round`'s
    /// postings.
    pub(crate) fn round_range(&self, round: u64) -> std::ops::Range<usize> {
        let r = round as usize;
        let lo = self.round_starts.get(r).copied().unwrap_or(self.abs_len());
        let hi = self.round_starts.get(r + 1).copied().unwrap_or(self.abs_len());
        lo..hi
    }

    /// The retained slice for an absolute range, or `Err` if any part
    /// of it has been dropped under the retention watermark (reading
    /// history that no longer exists would silently corrupt
    /// transcripts, so it is a hard protocol error).
    pub(crate) fn slice_abs(&self, range: std::ops::Range<usize>) -> Result<&[P], BoardError> {
        if range.start < self.base && range.start < range.end {
            return Err(BoardError::Protocol(format!(
                "read below retention watermark: postings [{}, {}) requested, first retained is {}",
                range.start, range.end, self.base
            )));
        }
        let lo = range.start.max(self.base) - self.base;
        let hi = range.end.max(self.base) - self.base;
        Ok(&self.postings[lo..hi])
    }

    /// Ticks the round clock, sealing the current round's range.
    pub(crate) fn advance(&mut self) -> u64 {
        self.round += 1;
        self.round_starts.push(self.abs_len());
        self.round
    }

    /// Drops every posting of sealed rounds before `round` (clamped to
    /// the current round — the open round is never dropped). The round
    /// clock, `round_starts` and sequence numbers are untouched.
    pub(crate) fn retain_rounds_from(&mut self, round: u64) {
        let cut_round = round.min(self.round) as usize;
        let cut = self.round_starts.get(cut_round).copied().unwrap_or(self.abs_len());
        if cut > self.base {
            self.postings.drain(..cut - self.base);
            self.base = cut;
        }
    }
}

/// The sharded form of [`RoundLog`]: a small **round-clock lock**
/// (current round, the per-round cumulative start index, and the list
/// of round shards) plus one append lock **per round**, so writers in
/// different rounds — and readers of sealed history — never contend on
/// a single global mutex. The TCP board server appends every
/// connection's frames through this structure.
///
/// # Ordering contract
///
/// Identical to [`RoundLog`] behind a different locking scheme: each
/// `append_with` call lands atomically in the current round's shard
/// (appends within a round are serialized by that round's lock, in
/// lock-acquisition order — which for the board server is frame
/// arrival order), and `advance` seals the current shard so no append
/// can slip into a finished round. Rounds only grow at the tail;
/// sealed shards are immutable, which is what lets cursor reads walk
/// history without blocking writers.
#[derive(Debug)]
pub(crate) struct ShardedRoundLog<P> {
    clock: Mutex<LogClock<P>>,
    /// Total postings across all shards; kept outside the locks so the
    /// `GetLen` poll path (worker position gates spin on it) is one
    /// atomic load.
    total: AtomicUsize,
}

#[derive(Debug)]
struct LogClock<P> {
    round: u64,
    /// `round_starts[r]` = global index of round `r`'s first posting;
    /// one entry per started round (`round_starts.len() == shards.len()`).
    round_starts: Vec<usize>,
    /// One shard per round; `shards[r]` holds round `r`'s postings.
    shards: Vec<Arc<RoundShard<P>>>,
}

#[derive(Debug)]
struct RoundShard<P> {
    cells: Mutex<ShardCells<P>>,
}

#[derive(Debug)]
struct ShardCells<P> {
    postings: Vec<P>,
    /// Set (under both the clock and this shard's lock) when the round
    /// advances past this shard; appenders that raced the tick re-check
    /// and retry against the new live shard.
    sealed: bool,
}

impl<P> RoundShard<P> {
    fn new() -> Self {
        RoundShard { cells: Mutex::new(ShardCells { postings: Vec::new(), sealed: false }) }
    }
}

impl<P> Default for ShardedRoundLog<P> {
    fn default() -> Self {
        ShardedRoundLog {
            clock: Mutex::new(LogClock {
                round: 0,
                round_starts: vec![0],
                shards: vec![Arc::new(RoundShard::new())],
            }),
            total: AtomicUsize::new(0),
        }
    }
}

impl<P> ShardedRoundLog<P> {
    /// The current round.
    pub(crate) fn round(&self) -> u64 {
        self.clock.lock().round
    }

    /// Total postings appended so far (one atomic load — the hot poll
    /// of worker position gates).
    pub(crate) fn len(&self) -> usize {
        self.total.load(Ordering::Acquire)
    }

    /// Appends into the current round's shard: `fill(round, out)` pushes
    /// any number of postings (already tagged with `round`) onto `out`.
    /// The whole call is atomic with respect to other appends and round
    /// ticks. Returns how many postings were appended.
    ///
    /// Lock order is strictly clock → shard, and the clock is released
    /// before the shard is taken (so a long append never blocks the
    /// round clock); the `sealed` re-check closes the race with a
    /// concurrent `advance`.
    pub(crate) fn append_with(&self, fill: impl FnOnce(u64, &mut Vec<P>)) -> usize {
        let mut fill = Some(fill);
        loop {
            let (round, shard) = {
                let g = self.clock.lock();
                // `shards` is never empty (one live shard always exists).
                let last = g.shards.len() - 1;
                (g.round, Arc::clone(&g.shards[last]))
            };
            let mut cells = shard.cells.lock();
            if cells.sealed {
                continue; // the round ticked underneath us; retry on the new shard
            }
            let before = cells.postings.len();
            if let Some(f) = fill.take() {
                f(round, &mut cells.postings);
            }
            let added = cells.postings.len() - before;
            self.total.fetch_add(added, Ordering::Release);
            return added;
        }
    }

    /// Ticks the round clock: seals the current shard (no append can
    /// land in it afterwards) and opens a fresh one. Returns the new
    /// round.
    pub(crate) fn advance(&self) -> u64 {
        let mut g = self.clock.lock();
        {
            let last = g.shards.len() - 1;
            let mut cells = g.shards[last].cells.lock();
            cells.sealed = true;
            let start = g.round_starts[last] + cells.postings.len();
            drop(cells);
            g.round_starts.push(start);
        }
        g.shards.push(Arc::new(RoundShard::new()));
        g.round += 1;
        g.round
    }

    /// Runs `f` over round `round`'s postings (the empty slice for
    /// rounds not started yet). Holds only that round's shard lock
    /// while `f` runs.
    pub(crate) fn with_round<R>(&self, round: u64, f: impl FnOnce(&[P]) -> R) -> R {
        let shard = {
            let g = self.clock.lock();
            usize::try_from(round).ok().and_then(|r| g.shards.get(r).map(Arc::clone))
        };
        match shard {
            Some(shard) => f(&shard.cells.lock().postings),
            None => f(&[]),
        }
    }

    /// Applies `f` to every posting with global sequence number
    /// `>= cursor`, in order, until the log end or `f` errors. Sealed
    /// rounds entirely below the cursor are skipped without taking
    /// their shard lock.
    pub(crate) fn try_for_each_from(
        &self,
        cursor: usize,
        f: &mut dyn FnMut(&P) -> Result<(), BoardError>,
    ) -> Result<(), BoardError> {
        let (starts, shards) = {
            let g = self.clock.lock();
            (g.round_starts.clone(), g.shards.clone())
        };
        for (r, shard) in shards.iter().enumerate() {
            let base = starts[r];
            // A sealed round's extent is known from the index alone.
            if let Some(&next) = starts.get(r + 1) {
                if next <= cursor {
                    continue;
                }
            }
            let cells = shard.cells.lock();
            let skip = cursor.saturating_sub(base).min(cells.postings.len());
            for p in &cells.postings[skip..] {
                f(p)?;
            }
        }
        Ok(())
    }
}

/// The in-process backend: postings live in this process behind one
/// `RwLock`, with the [`RoundLog`] index making round reads
/// `O(round size)` and the `for_each*` overrides clone-free.
#[derive(Debug, Default)]
pub struct InProcessTransport<M> {
    log: RwLock<RoundLog<Posting<M>>>,
}

impl<M> InProcessTransport<M> {
    /// Creates an empty in-process board store.
    pub fn new() -> Self {
        InProcessTransport { log: RwLock::new(RoundLog::default()) }
    }
}

impl<M: Clone + Send + Sync> BoardTransport<M> for InProcessTransport<M> {
    fn post_batch(&self, records: Vec<PostRecord<M>>) -> Result<(), BoardError> {
        self.post_stream(&mut records.into_iter()).map(|_| ())
    }

    fn post_stream(
        &self,
        records: &mut dyn Iterator<Item = PostRecord<M>>,
    ) -> Result<u64, BoardError> {
        let mut g = self.log.write();
        let round = g.round;
        let before = g.postings.len();
        g.postings.reserve(records.size_hint().0);
        g.postings.extend(records.map(|r| Posting {
            round,
            from: r.from,
            phase: r.phase,
            message: r.message,
            elements: r.elements,
            bytes: r.bytes,
        }));
        Ok((g.postings.len() - before) as u64)
    }

    fn post_slice(
        &self,
        from: &RoleId,
        phase: &Arc<str>,
        messages: &[M],
        elements: u64,
        bytes: u64,
    ) -> Result<(), BoardError> {
        let mut g = self.log.write();
        let round = g.round;
        g.postings.reserve(messages.len());
        g.postings.extend(messages.iter().map(|message| Posting {
            round,
            from: from.clone(),
            phase: Arc::clone(phase),
            message: message.clone(),
            elements,
            bytes,
        }));
        Ok(())
    }

    fn advance_round(&self) -> Result<u64, BoardError> {
        Ok(self.log.write().advance())
    }

    fn round(&self) -> Result<u64, BoardError> {
        Ok(self.log.read().round)
    }

    fn len(&self) -> Result<usize, BoardError> {
        Ok(self.log.read().abs_len())
    }

    fn read_round(&self, round: u64) -> Result<Vec<Posting<M>>, BoardError> {
        let g = self.log.read();
        Ok(g.slice_abs(g.round_range(round))?.to_vec())
    }

    fn read_from(&self, cursor: usize) -> Result<Vec<Posting<M>>, BoardError> {
        let g = self.log.read();
        let lo = cursor.min(g.abs_len());
        Ok(g.slice_abs(lo..g.abs_len())?.to_vec())
    }

    fn for_each(&self, f: &mut dyn FnMut(&Posting<M>)) -> Result<(), BoardError> {
        let g = self.log.read();
        for p in g.slice_abs(g.base..g.abs_len())? {
            f(p);
        }
        Ok(())
    }

    fn for_each_in_round(
        &self,
        round: u64,
        f: &mut dyn FnMut(&Posting<M>),
    ) -> Result<(), BoardError> {
        let g = self.log.read();
        for p in g.slice_abs(g.round_range(round))? {
            f(p);
        }
        Ok(())
    }

    fn retain_rounds_from(&self, round: u64) -> Result<(), BoardError> {
        self.log.write().retain_rounds_from(round);
        Ok(())
    }

    fn backend_name(&self) -> &'static str {
        "in-process"
    }
}

/// A value with a canonical byte encoding for the TCP board wire.
///
/// The workspace's `serde` is an offline marker-trait shim (no wire
/// format), so board messages that cross process boundaries implement
/// this hand-rolled codec instead. Encodings must be deterministic:
/// the transcript-parity guarantee compares re-decoded postings
/// byte-for-byte.
pub trait WireMessage: Sized {
    /// Appends the canonical encoding of `self` to `out`.
    ///
    /// # Errors
    ///
    /// Returns [`BoardError::Protocol`] if a length-prefixed field
    /// exceeds the wire format's `u32` length prefix (see
    /// [`put_bytes`]).
    fn encode(&self, out: &mut Vec<u8>) -> Result<(), BoardError>;
    /// Decodes one value from the cursor.
    ///
    /// # Errors
    ///
    /// Returns [`BoardError::Protocol`] on malformed input.
    fn decode(cur: &mut WireCursor<'_>) -> Result<Self, BoardError>;
}

/// A read cursor over a received wire buffer.
#[derive(Debug)]
pub struct WireCursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireCursor<'a> {
    /// Wraps a buffer for decoding.
    pub fn new(buf: &'a [u8]) -> Self {
        WireCursor { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Bytes consumed so far (the cursor's offset into the buffer) —
    /// lets a decoder record where a just-read field lives inside the
    /// original frame, e.g. to borrow payloads from a shared arena
    /// instead of copying them out.
    pub fn position(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], BoardError> {
        if self.remaining() < n {
            return Err(BoardError::Protocol(format!(
                "truncated frame: wanted {n} bytes, {} left",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, BoardError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, BoardError> {
        let b = self.take(4)?;
        let mut a = [0u8; 4];
        a.copy_from_slice(b);
        Ok(u32::from_le_bytes(a))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, BoardError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], BoardError> {
        let n = self.u32()? as usize;
        self.take(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, BoardError> {
        std::str::from_utf8(self.bytes()?)
            .map_err(|e| BoardError::Protocol(format!("non-UTF-8 string on wire: {e}")))
    }
}

/// Appends a little-endian `u32`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a length-prefixed byte string.
///
/// # Errors
///
/// Returns [`BoardError::Protocol`] if `b` is longer than `u32::MAX`
/// bytes — an `as` cast would silently truncate the length prefix and
/// corrupt the wire stream.
pub fn put_bytes(out: &mut Vec<u8>, b: &[u8]) -> Result<(), BoardError> {
    let len = u32::try_from(b.len()).map_err(|_| {
        BoardError::Protocol(format!(
            "byte string of {} bytes exceeds the u32 wire length prefix",
            b.len()
        ))
    })?;
    put_u32(out, len);
    out.extend_from_slice(b);
    Ok(())
}

/// Appends a length-prefixed UTF-8 string.
///
/// # Errors
///
/// Returns [`BoardError::Protocol`] if `s` is longer than `u32::MAX`
/// bytes (see [`put_bytes`]).
pub fn put_str(out: &mut Vec<u8>, s: &str) -> Result<(), BoardError> {
    put_bytes(out, s.as_bytes())
}

impl WireMessage for String {
    fn encode(&self, out: &mut Vec<u8>) -> Result<(), BoardError> {
        put_str(out, self)
    }

    fn decode(cur: &mut WireCursor<'_>) -> Result<Self, BoardError> {
        Ok(cur.str()?.to_string())
    }
}

impl WireMessage for u64 {
    fn encode(&self, out: &mut Vec<u8>) -> Result<(), BoardError> {
        put_u64(out, *self);
        Ok(())
    }

    fn decode(cur: &mut WireCursor<'_>) -> Result<Self, BoardError> {
        cur.u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(i: usize, phase: &str) -> PostRecord<u64> {
        PostRecord {
            from: RoleId::new("c", i),
            phase: Arc::from(phase),
            message: i as u64,
            elements: 1,
            bytes: 8,
        }
    }

    #[test]
    fn round_index_partitions_log() {
        let t = InProcessTransport::<u64>::new();
        t.post_batch(vec![rec(0, "a"), rec(1, "a")]).unwrap();
        t.advance_round().unwrap();
        t.post_batch(vec![rec(2, "b")]).unwrap();
        t.advance_round().unwrap();
        // Round 2 is empty so far.
        assert_eq!(t.len().unwrap(), 3);
        assert_eq!(t.read_round(0).unwrap().len(), 2);
        assert_eq!(t.read_round(1).unwrap().len(), 1);
        assert_eq!(t.read_round(1).unwrap()[0].message, 2);
        assert!(t.read_round(2).unwrap().is_empty());
        assert!(t.read_round(99).unwrap().is_empty());
    }

    #[test]
    fn cursor_reads_resume() {
        let t = InProcessTransport::<u64>::new();
        t.post_batch(vec![rec(0, "a")]).unwrap();
        let first = t.read_from(0).unwrap();
        assert_eq!(first.len(), 1);
        t.post_batch(vec![rec(1, "a"), rec(2, "a")]).unwrap();
        let rest = t.read_from(first.len()).unwrap();
        assert_eq!(rest.len(), 2);
        assert_eq!(rest[0].message, 1);
        assert!(t.read_from(3).unwrap().is_empty());
        assert!(t.read_from(100).unwrap().is_empty());
    }

    #[test]
    fn for_each_in_round_visits_exactly_that_round() {
        let t = InProcessTransport::<u64>::new();
        t.post_batch(vec![rec(0, "a")]).unwrap();
        t.advance_round().unwrap();
        t.post_batch(vec![rec(1, "b"), rec(2, "b")]).unwrap();
        let mut seen = Vec::new();
        t.for_each_in_round(1, &mut |p| seen.push(p.message)).unwrap();
        assert_eq!(seen, vec![1, 2]);
    }

    #[test]
    fn retention_watermark_drops_sealed_rounds() {
        let t = InProcessTransport::<u64>::new();
        for round in 0..3usize {
            t.post_batch(vec![rec(round * 10, "a"), rec(round * 10 + 1, "a")]).unwrap();
            t.advance_round().unwrap();
        }
        assert_eq!(t.len().unwrap(), 6);
        t.retain_rounds_from(2).unwrap();
        // Sequence numbers keep counting dropped postings, so
        // len-synchronised readers are undisturbed.
        assert_eq!(t.len().unwrap(), 6);
        let r2 = t.read_round(2).unwrap();
        assert_eq!(r2.len(), 2);
        assert_eq!(r2[0].message, 20);
        // Reads below the watermark are a hard protocol error, never a
        // silently truncated transcript.
        assert!(matches!(t.read_round(0), Err(BoardError::Protocol(_))));
        assert!(matches!(t.read_from(0), Err(BoardError::Protocol(_))));
        // A cursor at the watermark reads cleanly.
        assert_eq!(t.read_from(4).unwrap().len(), 2);
        assert!(t.read_from(6).unwrap().is_empty());
        // Retention is monotone: asking for an older watermark is a
        // no-op, and re-asking for the same one is idempotent.
        t.retain_rounds_from(1).unwrap();
        t.retain_rounds_from(2).unwrap();
        assert_eq!(t.read_round(2).unwrap().len(), 2);
        // The open round is never dropped.
        t.post_batch(vec![rec(30, "b")]).unwrap();
        t.retain_rounds_from(99).unwrap();
        assert_eq!(t.read_round(3).unwrap().len(), 1);
        assert_eq!(t.len().unwrap(), 7);
    }

    #[test]
    fn sharded_log_matches_round_log_semantics() {
        let log = ShardedRoundLog::<u64>::default();
        assert_eq!(log.len(), 0);
        assert_eq!(log.round(), 0);
        log.append_with(|round, out| {
            assert_eq!(round, 0);
            out.extend([10, 11]);
        });
        assert_eq!(log.advance(), 1);
        log.append_with(|round, out| {
            assert_eq!(round, 1);
            out.push(12);
        });
        assert_eq!(log.len(), 3);
        log.with_round(0, |ps| assert_eq!(ps, &[10, 11]));
        log.with_round(1, |ps| assert_eq!(ps, &[12]));
        log.with_round(7, |ps| assert!(ps.is_empty()));
        let mut seen = Vec::new();
        log.try_for_each_from(1, &mut |p| {
            seen.push(*p);
            Ok(())
        })
        .unwrap();
        assert_eq!(seen, vec![11, 12]);
        let mut none = Vec::new();
        log.try_for_each_from(99, &mut |p| {
            none.push(*p);
            Ok(())
        })
        .unwrap();
        assert!(none.is_empty());
    }

    #[test]
    fn sharded_log_concurrent_appends_and_ticks_lose_nothing() {
        // Appenders racing the round clock must never drop a posting
        // into a sealed round or lose one entirely: every appended
        // value appears exactly once, tagged with a round that was
        // live when its shard lock was held.
        let log = Arc::new(ShardedRoundLog::<(u64, u64)>::default());
        let writers = 4u64;
        let per = 500u64;
        std::thread::scope(|s| {
            for w in 0..writers {
                let log = Arc::clone(&log);
                s.spawn(move || {
                    for i in 0..per {
                        log.append_with(|round, out| out.push((round, w * per + i)));
                    }
                });
            }
            let log = Arc::clone(&log);
            s.spawn(move || {
                for _ in 0..20 {
                    log.advance();
                    std::thread::yield_now();
                }
            });
        });
        assert_eq!(log.len(), (writers * per) as usize);
        let mut values = Vec::new();
        let mut last_round = 0;
        log.try_for_each_from(0, &mut |&(round, v)| {
            // Global order is non-decreasing in round.
            assert!(round >= last_round);
            last_round = round;
            values.push(v);
            Ok(())
        })
        .unwrap();
        values.sort_unstable();
        let expect: Vec<u64> = (0..writers * per).collect();
        assert_eq!(values, expect);
    }

    #[test]
    fn wire_roundtrip_primitives() {
        let mut out = Vec::new();
        put_u64(&mut out, 0xDEAD_BEEF_0BAD_F00D);
        put_str(&mut out, "offline/1-beaver").unwrap();
        put_bytes(&mut out, &[1, 2, 3]).unwrap();
        let mut cur = WireCursor::new(&out);
        assert_eq!(cur.u64().unwrap(), 0xDEAD_BEEF_0BAD_F00D);
        assert_eq!(cur.str().unwrap(), "offline/1-beaver");
        assert_eq!(cur.bytes().unwrap(), &[1, 2, 3]);
        assert_eq!(cur.remaining(), 0);
        assert!(cur.u8().is_err());
    }
}
