//! Communication metering.
//!
//! The paper's efficiency claims are stated in *ring elements per
//! gate*: `O(n)` offline, `O(1)` online (Theorem 1). The meter counts
//! exactly what gets posted to the bulletin board, broken down by
//! phase, so the experiment harness reports measured counts rather
//! than analytic estimates.
//!
//! The hot path ([`CommMeter::record`]) is lock-free for already-seen
//! phases: counters are per-phase atomics behind a shared read lock,
//! so parallel workers replaying posts never serialize on the meter.
//! The write lock is taken only the first time a phase label appears.

use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

/// Aggregated traffic for one phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseStats {
    /// Ring elements posted.
    pub elements: u64,
    /// Bytes posted.
    pub bytes: u64,
    /// Number of board postings.
    pub messages: u64,
}

impl PhaseStats {
    /// Adds another stats record.
    pub fn merge(&mut self, other: &PhaseStats) {
        self.elements += other.elements;
        self.bytes += other.bytes;
        self.messages += other.messages;
    }
}

/// Per-phase atomic counters: bumped without any exclusive lock.
#[derive(Debug, Default)]
struct PhaseCounters {
    elements: AtomicU64,
    bytes: AtomicU64,
    messages: AtomicU64,
}

impl PhaseCounters {
    fn add(&self, elements: u64, bytes: u64, messages: u64) {
        self.elements.fetch_add(elements, Ordering::Relaxed);
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
        self.messages.fetch_add(messages, Ordering::Relaxed);
    }

    fn snapshot(&self) -> PhaseStats {
        PhaseStats {
            elements: self.elements.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            messages: self.messages.load(Ordering::Relaxed),
        }
    }
}

/// A thread-safe communication meter keyed by phase label.
///
/// Recording under a phase that already exists takes only a shared
/// read lock plus relaxed atomic adds; concurrent recorders do not
/// serialize each other.
#[derive(Debug, Clone, Default)]
pub struct CommMeter {
    inner: Arc<RwLock<BTreeMap<String, Arc<PhaseCounters>>>>,
}

impl CommMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    fn counters(&self, phase: &str) -> Arc<PhaseCounters> {
        if let Some(c) = self.inner.read().get(phase) {
            return Arc::clone(c);
        }
        let mut g = self.inner.write();
        Arc::clone(g.entry(phase.to_string()).or_default())
    }

    /// Records a posting of `elements` ring elements / `bytes` bytes
    /// under `phase`.
    pub fn record(&self, phase: &str, elements: u64, bytes: u64) {
        self.counters(phase).add(elements, bytes, 1);
    }

    /// Records a whole batch under `phase` in one update: `messages`
    /// postings totalling `elements` elements / `bytes` bytes.
    pub fn record_many(&self, phase: &str, elements: u64, bytes: u64, messages: u64) {
        self.counters(phase).add(elements, bytes, messages);
    }

    /// The stats for one phase (zero if never recorded).
    pub fn phase(&self, phase: &str) -> PhaseStats {
        self.inner.read().get(phase).map(|c| c.snapshot()).unwrap_or_default()
    }

    /// Sum of stats over phases whose label starts with `prefix`.
    pub fn phase_prefix(&self, prefix: &str) -> PhaseStats {
        let mut acc = PhaseStats::default();
        for (k, v) in self.inner.read().iter() {
            if k.starts_with(prefix) {
                acc.merge(&v.snapshot());
            }
        }
        acc
    }

    /// Total over all phases.
    pub fn total(&self) -> PhaseStats {
        let mut acc = PhaseStats::default();
        for v in self.inner.read().values() {
            acc.merge(&v.snapshot());
        }
        acc
    }

    /// All phases in label order.
    pub fn phases(&self) -> Vec<(String, PhaseStats)> {
        self.inner.read().iter().map(|(k, v)| (k.clone(), v.snapshot())).collect()
    }

    /// Clears all recorded stats.
    pub fn reset(&self) {
        self.inner.write().clear();
    }

    /// Elements per gate for a phase, given the gate count.
    ///
    /// # Panics
    ///
    /// Panics if `gates` is zero.
    pub fn elements_per_gate(&self, phase_prefix: &str, gates: usize) -> f64 {
        assert!(gates > 0, "elements_per_gate: zero gates");
        self.phase_prefix(phase_prefix).elements as f64 / gates as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let m = CommMeter::new();
        m.record("offline/triples", 10, 80);
        m.record("offline/pack", 5, 40);
        m.record("online/mult", 2, 16);
        assert_eq!(m.phase("offline/triples").elements, 10);
        assert_eq!(m.phase_prefix("offline").elements, 15);
        assert_eq!(m.phase_prefix("offline").messages, 2);
        assert_eq!(m.total().bytes, 136);
        assert_eq!(m.phase("nonexistent"), PhaseStats::default());
    }

    #[test]
    fn per_gate_normalization() {
        let m = CommMeter::new();
        m.record("online", 100, 800);
        assert!((m.elements_per_gate("online", 50) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn reset_clears() {
        let m = CommMeter::new();
        m.record("x", 1, 1);
        m.reset();
        assert_eq!(m.total(), PhaseStats::default());
    }

    #[test]
    fn phases_sorted() {
        let m = CommMeter::new();
        m.record("b", 1, 1);
        m.record("a", 1, 1);
        let phases = m.phases();
        assert_eq!(phases[0].0, "a");
        assert_eq!(phases[1].0, "b");
    }

    #[test]
    fn record_many_aggregates_like_singles() {
        let a = CommMeter::new();
        let b = CommMeter::new();
        for _ in 0..7 {
            a.record("x", 3, 24);
        }
        b.record_many("x", 21, 168, 7);
        assert_eq!(a.phase("x"), b.phase("x"));
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let m = CommMeter::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        m.record("hot", 1, 8);
                    }
                });
            }
        });
        let stats = m.phase("hot");
        assert_eq!(stats.messages, 8000);
        assert_eq!(stats.elements, 8000);
        assert_eq!(stats.bytes, 64000);
    }
}
