//! Communication metering.
//!
//! The paper's efficiency claims are stated in *ring elements per
//! gate*: `O(n)` offline, `O(1)` online (Theorem 1). The meter counts
//! exactly what gets posted to the bulletin board, broken down by
//! phase, so the experiment harness reports measured counts rather
//! than analytic estimates.

use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

/// Aggregated traffic for one phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseStats {
    /// Ring elements posted.
    pub elements: u64,
    /// Bytes posted.
    pub bytes: u64,
    /// Number of board postings.
    pub messages: u64,
}

impl PhaseStats {
    /// Adds another stats record.
    pub fn merge(&mut self, other: &PhaseStats) {
        self.elements += other.elements;
        self.bytes += other.bytes;
        self.messages += other.messages;
    }
}

/// A thread-safe communication meter keyed by phase label.
#[derive(Debug, Clone, Default)]
pub struct CommMeter {
    inner: Arc<RwLock<BTreeMap<String, PhaseStats>>>,
}

impl CommMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a posting of `elements` ring elements / `bytes` bytes
    /// under `phase`.
    pub fn record(&self, phase: &str, elements: u64, bytes: u64) {
        let mut g = self.inner.write();
        let s = g.entry(phase.to_string()).or_default();
        s.elements += elements;
        s.bytes += bytes;
        s.messages += 1;
    }

    /// The stats for one phase (zero if never recorded).
    pub fn phase(&self, phase: &str) -> PhaseStats {
        self.inner.read().get(phase).copied().unwrap_or_default()
    }

    /// Sum of stats over phases whose label starts with `prefix`.
    pub fn phase_prefix(&self, prefix: &str) -> PhaseStats {
        let mut acc = PhaseStats::default();
        for (k, v) in self.inner.read().iter() {
            if k.starts_with(prefix) {
                acc.merge(v);
            }
        }
        acc
    }

    /// Total over all phases.
    pub fn total(&self) -> PhaseStats {
        let mut acc = PhaseStats::default();
        for v in self.inner.read().values() {
            acc.merge(v);
        }
        acc
    }

    /// All phases in label order.
    pub fn phases(&self) -> Vec<(String, PhaseStats)> {
        self.inner.read().iter().map(|(k, v)| (k.clone(), *v)).collect()
    }

    /// Clears all recorded stats.
    pub fn reset(&self) {
        self.inner.write().clear();
    }

    /// Elements per gate for a phase, given the gate count.
    ///
    /// # Panics
    ///
    /// Panics if `gates` is zero.
    pub fn elements_per_gate(&self, phase_prefix: &str, gates: usize) -> f64 {
        assert!(gates > 0, "elements_per_gate: zero gates");
        self.phase_prefix(phase_prefix).elements as f64 / gates as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let m = CommMeter::new();
        m.record("offline/triples", 10, 80);
        m.record("offline/pack", 5, 40);
        m.record("online/mult", 2, 16);
        assert_eq!(m.phase("offline/triples").elements, 10);
        assert_eq!(m.phase_prefix("offline").elements, 15);
        assert_eq!(m.phase_prefix("offline").messages, 2);
        assert_eq!(m.total().bytes, 136);
        assert_eq!(m.phase("nonexistent"), PhaseStats::default());
    }

    #[test]
    fn per_gate_normalization() {
        let m = CommMeter::new();
        m.record("online", 100, 800);
        assert!((m.elements_per_gate("online", 50) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn reset_clears() {
        let m = CommMeter::new();
        m.record("x", 1, 1);
        m.reset();
        assert_eq!(m.total(), PhaseStats::default());
    }

    #[test]
    fn phases_sorted() {
        let m = CommMeter::new();
        m.record("b", 1, 1);
        m.record("a", 1, 1);
        let phases = m.phases();
        assert_eq!(phases[0].0, "a");
        assert_eq!(phases[1].0, "b");
    }
}
