//! Frame-level I/O for the TCP board wire protocol: length-prefix
//! framing, vectored writes, and a buffered poll-aware frame reader.
//!
//! Every frame on the wire is a `u32` little-endian length followed by
//! that many body bytes (first body byte = opcode; see [`op`]). This
//! module owns the byte-level mechanics shared by the client and
//! server in [`crate::tcp`]:
//!
//! - [`write_frame`] emits one frame with a single vectored write
//!   (header + body in one syscall on the happy path, no copy into a
//!   combined buffer);
//! - [`append_frame`] stages a frame into an outbound coalescing
//!   buffer, so a pipelining client packs many small frames into one
//!   `write` syscall;
//! - [`FrameReader`] reads frames through one **reusable** buffer
//!   (zero steady-state allocation, multiple buffered frames are
//!   drained without further syscalls) and owns the connection's idle
//!   policy: the read timeout escalates 25ms → 200ms across
//!   consecutive idle polls, then the connection **parks** in a
//!   blocking read — an idle fleet burns no wakeups at all, and the
//!   server wakes parked connections explicitly at shutdown (socket
//!   shutdown from the accept loop).
//!
//! A timeout before the first byte of a frame is [`FrameRead::Idle`]
//! (the caller re-checks its shutdown flag); a timeout *mid-frame*
//! resumes the partial read, with a stall budget of
//! [`MAX_MIDFRAME_STALL_TICKS`] consecutive empty ticks before the
//! peer is declared dead.

use std::io::{IoSlice, Read, Write};
use std::net::TcpStream;
// lint:allow(determinism): `Duration` here configures socket read
// timeouts and idle-backoff ticks only — no wall-clock value is ever
// read or enters the posting log, so transcripts stay time-independent.
use std::time::Duration;

use crate::transport::BoardError;

/// Frames larger than this are rejected (corrupt length prefix guard).
pub(crate) const MAX_FRAME: usize = 64 << 20;

/// Wire opcodes. Requests `0x01..=0x07` are the v1 lockstep set (one
/// response frame per request); `0x08..=0x0A` are the v2 pipelining
/// extension — `POST_PIPE` frames are **not** individually
/// acknowledged, a later `POST_SYNC` collects one coalesced
/// [`op::RESP_OK_N`] for the whole run.
pub(crate) mod op {
    /// Append a batch of postings; acked immediately with [`RESP_OK`].
    pub const POST_BATCH: u8 = 0x01;
    /// Tick the round clock; replies [`RESP_VALUE`] (new round).
    pub const ADVANCE_ROUND: u8 = 0x02;
    /// Read the current round; replies [`RESP_VALUE`].
    pub const GET_ROUND: u8 = 0x03;
    /// Read the posting count; replies [`RESP_VALUE`].
    pub const GET_LEN: u8 = 0x04;
    /// Read one round's postings; replies [`RESP_POSTINGS`].
    pub const READ_ROUND: u8 = 0x05;
    /// Read postings from a cursor; replies [`RESP_POSTINGS`].
    pub const READ_FROM: u8 = 0x06;
    /// Ask the server to stop; replies [`RESP_OK`].
    pub const SHUTDOWN: u8 = 0x07;
    /// Append a batch of postings **without** an individual ack; the
    /// connection's next [`POST_SYNC`] acknowledges the whole run.
    pub const POST_PIPE: u8 = 0x08;
    /// Barrier for pipelined posting: replies [`RESP_OK_N`] carrying
    /// the number of `POST_PIPE` frames appended since the last sync.
    pub const POST_SYNC: u8 = 0x09;
    /// Read the server's wire/throughput counters; replies
    /// [`RESP_STATS`].
    pub const GET_STATS: u8 = 0x0A;

    /// Bare success.
    pub const RESP_OK: u8 = 0x80;
    /// A `u64` value.
    pub const RESP_VALUE: u8 = 0x81;
    /// A posting list (`u32` count, then encoded postings).
    pub const RESP_POSTINGS: u8 = 0x82;
    /// Coalesced ack: `u64` count of pipelined frames acknowledged.
    pub const RESP_OK_N: u8 = 0x83;
    /// Server counters: `u32` field count, then that many `u64`s.
    pub const RESP_STATS: u8 = 0x84;
    /// An error string.
    pub const RESP_ERR: u8 = 0xEE;
}

pub(crate) fn io_err(context: &str, e: &std::io::Error) -> BoardError {
    BoardError::Io(format!("{context}: {e}"))
}

/// Whether an I/O error is a socket read-timeout expiry. On Unix a
/// `SO_RCVTIMEO` expiry surfaces as `WouldBlock` ("Resource temporarily
/// unavailable"), on Windows as `TimedOut` — match the [`std::io::ErrorKind`],
/// never the display string.
pub(crate) fn is_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut)
}

/// Validates a frame body length against the `u32` prefix and the
/// server frame cap.
fn frame_len(body: &[u8]) -> Result<u32, BoardError> {
    if body.len() > MAX_FRAME {
        return Err(BoardError::Protocol(format!(
            "frame body of {} bytes exceeds the {MAX_FRAME}-byte frame cap",
            body.len()
        )));
    }
    u32::try_from(body.len()).map_err(|_| {
        BoardError::Protocol(format!(
            "frame body of {} bytes exceeds the u32 length prefix",
            body.len()
        ))
    })
}

/// Writes one length-prefixed frame with a vectored write: the 4-byte
/// header and the body go down in one syscall when the socket accepts
/// them, with a partial-write loop for short writes.
pub(crate) fn write_frame(stream: &mut TcpStream, body: &[u8]) -> Result<(), BoardError> {
    let len = frame_len(body)?;
    let header = len.to_le_bytes();
    let mut done = 0usize; // bytes of header+body already written
    let total = header.len() + body.len();
    while done < total {
        let bufs = if done < header.len() {
            [IoSlice::new(&header[done..]), IoSlice::new(body)]
        } else {
            [IoSlice::new(&body[done - header.len()..]), IoSlice::new(&[])]
        };
        match stream.write_vectored(&bufs) {
            Ok(0) => {
                return Err(BoardError::Io("socket accepted zero bytes mid-frame".into()))
            }
            Ok(n) => done += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(io_err("write frame", &e)),
        }
    }
    stream.flush().map_err(|e| io_err("flush frame", &e))
}

/// Stages one length-prefixed frame into an outbound coalescing
/// buffer (see [`flush_wire`]): the pipelined client path packs many
/// frames per `write` syscall instead of one syscall pair per frame.
pub(crate) fn append_frame(out: &mut Vec<u8>, body: &[u8]) -> Result<(), BoardError> {
    let len = frame_len(body)?;
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(body);
    Ok(())
}

/// Writes and clears an outbound coalescing buffer filled by
/// [`append_frame`].
pub(crate) fn flush_wire(stream: &mut TcpStream, wire: &mut Vec<u8>) -> Result<(), BoardError> {
    if wire.is_empty() {
        return Ok(());
    }
    stream.write_all(wire).map_err(|e| io_err("write pipelined frames", &e))?;
    stream.flush().map_err(|e| io_err("flush pipelined frames", &e))?;
    wire.clear();
    Ok(())
}

/// Reads one frame into a reusable buffer (client side: a read timeout
/// here is a hard error — the caller drops and reconnects, so partial
/// reads cannot desync the stream). Returns `false` when the peer
/// closed the connection cleanly before a new frame began.
pub(crate) fn read_frame_into(
    stream: &mut TcpStream,
    out: &mut Vec<u8>,
) -> Result<bool, BoardError> {
    let mut len_buf = [0u8; 4];
    match stream.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(false),
        Err(e) => return Err(io_err("read frame length", &e)),
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(BoardError::Protocol(format!("frame of {len} bytes exceeds cap")));
    }
    out.clear();
    out.resize(len, 0);
    stream.read_exact(out).map_err(|e| io_err("read frame body", &e))?;
    Ok(true)
}

/// Outcome of one poll-aware server-side frame read.
pub(crate) enum FrameRead<'a> {
    /// A complete frame body (borrowed from the reader's buffer; valid
    /// until the next [`FrameReader::next_frame`] call).
    Frame(&'a [u8]),
    /// The poll timeout expired before any byte of the next frame
    /// arrived — the connection is idle, not broken.
    Idle,
    /// The peer closed the connection cleanly between frames.
    Closed,
}

/// Consecutive idle-poll ticks tolerated *mid-frame* before the
/// connection is declared dead (300 × 200ms = 60s without a byte).
pub(crate) const MAX_MIDFRAME_STALL_TICKS: u32 = 300;

/// The fixed poll tick while a frame is partially received: short
/// enough to enforce the stall budget, long enough not to spin.
const MIDFRAME_TICK: Duration = Duration::from_millis(200);

/// Idle polls (at the capped 200ms tick) before the connection parks
/// in a fully blocking read. With the 25→50→100→200ms escalation this
/// parks after roughly 1.2s of silence.
const PARK_AFTER_IDLE_POLLS: u32 = 8;

/// The adaptive idle schedule: short ticks right after activity (fast
/// shutdown notice while a driver is mid-burst), escalating to the
/// ~200ms cap, then `None` — park in a blocking read until data
/// arrives or the server shuts the socket down.
fn idle_timeout(idle_polls: u32) -> Option<Duration> {
    match idle_polls {
        0 => Some(Duration::from_millis(25)),
        1 => Some(Duration::from_millis(50)),
        2 => Some(Duration::from_millis(100)),
        n if n < PARK_AFTER_IDLE_POLLS => Some(Duration::from_millis(200)),
        _ => None,
    }
}

/// Internal outcome of the buffer-filling loop, slice-free so the
/// frame slice can be taken in one place (the borrow checker rejects
/// conditionally returning a borrow from inside the fill loop).
enum Step {
    Frame { start: usize, len: usize },
    Idle,
    Closed,
}

/// A buffered frame reader bound to one server-side connection.
///
/// All reads land in one growable buffer that is reused for the life
/// of the connection: the steady state allocates nothing, compaction
/// only copies the (usually tiny) partial tail, and a burst of
/// pipelined frames arriving in one read is drained frame-by-frame
/// without further syscalls. The reader also owns the socket's read
/// timeout (see [`idle_timeout`]); callers never touch
/// `set_read_timeout` themselves.
pub(crate) struct FrameReader {
    buf: Vec<u8>,
    /// Consumed prefix: `buf[start..end]` is unconsumed wire data.
    start: usize,
    /// Filled extent of `buf`.
    end: usize,
    idle_polls: u32,
    stalled: u32,
    /// Last timeout applied to the socket (`None` = not yet set), so
    /// the active path skips the `setsockopt` syscall entirely.
    timeout: Option<Option<Duration>>,
}

impl FrameReader {
    pub(crate) fn new() -> Self {
        FrameReader {
            buf: vec![0; 64 * 1024],
            start: 0,
            end: 0,
            idle_polls: 0,
            stalled: 0,
            timeout: None,
        }
    }

    fn set_timeout(&mut self, stream: &TcpStream, t: Option<Duration>) {
        if self.timeout != Some(t) {
            let _ = stream.set_read_timeout(t);
            self.timeout = Some(t);
        }
    }

    /// Unconsumed bytes currently buffered (a partial or complete
    /// frame tail).
    fn buffered(&self) -> usize {
        self.end - self.start
    }

    /// Makes room to read at least one more byte, and — when the next
    /// frame's total size is known — room for that whole frame
    /// starting at `self.start`.
    fn make_room(&mut self, frame_total: Option<usize>) {
        let need = frame_total.unwrap_or(0);
        if self.start > 0 && (self.start + need > self.buf.len() || self.end == self.buf.len()) {
            self.buf.copy_within(self.start..self.end, 0);
            self.end -= self.start;
            self.start = 0;
        }
        if need > self.buf.len() {
            self.buf.resize(need, 0);
        }
        if self.end == self.buf.len() {
            let grown = (self.buf.len() * 2).max(64 * 1024);
            self.buf.resize(grown, 0);
        }
    }

    /// Reads the next frame. Returns buffered frames without touching
    /// the socket; otherwise blocks per the adaptive idle schedule.
    pub(crate) fn next_frame<'a>(
        &'a mut self,
        stream: &mut TcpStream,
    ) -> Result<FrameRead<'a>, BoardError> {
        match self.fill(stream)? {
            Step::Frame { start, len } => Ok(FrameRead::Frame(&self.buf[start..start + len])),
            Step::Idle => Ok(FrameRead::Idle),
            Step::Closed => Ok(FrameRead::Closed),
        }
    }

    fn fill(&mut self, stream: &mut TcpStream) -> Result<Step, BoardError> {
        loop {
            // Drain a complete buffered frame without a syscall.
            if self.buffered() >= 4 {
                let mut len_buf = [0u8; 4];
                len_buf.copy_from_slice(&self.buf[self.start..self.start + 4]);
                let len = u32::from_le_bytes(len_buf) as usize;
                if len > MAX_FRAME {
                    return Err(BoardError::Protocol(format!(
                        "frame of {len} bytes exceeds cap"
                    )));
                }
                if self.buffered() >= 4 + len {
                    let start = self.start + 4;
                    self.start += 4 + len;
                    self.idle_polls = 0;
                    self.stalled = 0;
                    return Ok(Step::Frame { start, len });
                }
                self.make_room(Some(4 + len));
            } else {
                self.make_room(None);
            }
            let partial = self.buffered() > 0;
            let timeout =
                if partial { Some(MIDFRAME_TICK) } else { idle_timeout(self.idle_polls) };
            self.set_timeout(stream, timeout);
            match stream.read(&mut self.buf[self.end..]) {
                Ok(0) => {
                    return if partial {
                        Err(BoardError::Protocol("peer closed mid-frame".into()))
                    } else {
                        Ok(Step::Closed)
                    };
                }
                Ok(n) => {
                    self.end += n;
                    self.stalled = 0;
                    self.idle_polls = 0;
                }
                Err(e) if is_timeout(&e) => {
                    if partial {
                        self.stalled += 1;
                        if self.stalled > MAX_MIDFRAME_STALL_TICKS {
                            return Err(io_err("read frame (peer stalled mid-frame)", &e));
                        }
                    } else {
                        self.idle_polls = self.idle_polls.saturating_add(1);
                        return Ok(Step::Idle);
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(io_err("read frame", &e)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    #[test]
    fn coalesced_frames_drain_without_extra_reads() {
        let (mut client, mut server) = pair();
        let mut wire = Vec::new();
        append_frame(&mut wire, &[1, 2, 3]).unwrap();
        append_frame(&mut wire, &[4]).unwrap();
        append_frame(&mut wire, &[]).unwrap();
        flush_wire(&mut client, &mut wire).unwrap();
        assert!(wire.is_empty());
        let mut reader = FrameReader::new();
        match reader.next_frame(&mut server).unwrap() {
            FrameRead::Frame(b) => assert_eq!(b, &[1, 2, 3]),
            _ => panic!("expected frame"),
        }
        match reader.next_frame(&mut server).unwrap() {
            FrameRead::Frame(b) => assert_eq!(b, &[4]),
            _ => panic!("expected frame"),
        }
        match reader.next_frame(&mut server).unwrap() {
            FrameRead::Frame(b) => assert!(b.is_empty()),
            _ => panic!("expected frame"),
        }
        drop(client);
        assert!(matches!(reader.next_frame(&mut server).unwrap(), FrameRead::Closed));
    }

    #[test]
    fn reader_grows_for_frames_larger_than_initial_buffer() {
        let (client, mut server) = pair();
        let big = vec![0xAB; 200 * 1024];
        let big2 = big.clone();
        let writer = std::thread::spawn(move || {
            let mut c = client;
            write_frame(&mut c, &big2).unwrap();
            c
        });
        let mut reader = FrameReader::new();
        loop {
            match reader.next_frame(&mut server).unwrap() {
                FrameRead::Frame(b) => {
                    assert_eq!(b.len(), big.len());
                    assert!(b.iter().all(|&x| x == 0xAB));
                    break;
                }
                FrameRead::Idle => continue,
                FrameRead::Closed => panic!("closed early"),
            }
        }
        drop(writer.join().unwrap());
    }

    #[test]
    fn idle_polls_escalate_then_reset_on_traffic() {
        let (mut client, mut server) = pair();
        let mut reader = FrameReader::new();
        // Two idle polls (25ms + 50ms), then traffic resets the streak.
        assert!(matches!(reader.next_frame(&mut server).unwrap(), FrameRead::Idle));
        assert!(matches!(reader.next_frame(&mut server).unwrap(), FrameRead::Idle));
        assert_eq!(reader.idle_polls, 2);
        write_frame(&mut client, &[9]).unwrap();
        match reader.next_frame(&mut server).unwrap() {
            FrameRead::Frame(b) => assert_eq!(b, &[9]),
            _ => panic!("expected frame"),
        }
        assert_eq!(reader.idle_polls, 0);
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let (mut client, mut server) = pair();
        use std::io::Write as _;
        client.write_all(&u32::MAX.to_le_bytes()).unwrap();
        client.flush().unwrap();
        let mut reader = FrameReader::new();
        let err = loop {
            match reader.next_frame(&mut server) {
                Ok(FrameRead::Idle) => continue,
                Ok(_) => panic!("expected error"),
                Err(e) => break e,
            }
        };
        assert!(err.to_string().contains("exceeds cap"));
    }
}
