//! The bulletin board: authenticated broadcast with metering.
//!
//! In the YOSO model every message — point-to-point included — is
//! posted to a public board (encrypted to its recipient when private),
//! so broadcast and P2P cost the same (§3.3). The board is therefore
//! the *single* communication channel of the protocol, and metering
//! postings measures the protocol's entire communication.
//!
//! The board itself is a thin façade over a pluggable
//! [`BoardTransport`]: the default [`InProcessTransport`] keeps
//! postings in this process with round-indexed storage; the
//! [`crate::tcp`] backend talks to a `board-server` process so
//! committee drivers and auditors can run as separate OS processes.
//! Metering stays local to the posting process either way.

use std::sync::Arc;

use crate::metrics::CommMeter;
use crate::role::RoleId;
use crate::transport::{
    BoardError, BoardTransport, InProcessTransport, PostRecord, WireMessage,
};

/// One posting on the board.
#[derive(Debug, Clone)]
pub struct Posting<M> {
    /// The posting round.
    pub round: u64,
    /// The author role.
    pub from: RoleId,
    /// The protocol phase the post was metered under. Shared, not
    /// owned: every posting of a phase aliases one allocation, so
    /// cloning a posting (or a whole round slice) never copies the
    /// label.
    pub phase: Arc<str>,
    /// The message payload.
    pub message: M,
    /// Metered size in ring elements (travels with the posting so
    /// remote auditor processes can rebuild the communication meter).
    pub elements: u64,
    /// Metered size in bytes.
    pub bytes: u64,
}

/// An append-only bulletin board carrying messages of type `M`,
/// shared between the simulated roles.
///
/// Every post records its size with the [`CommMeter`] under the
/// supplied phase label; experiments read the meter, tests read the
/// postings. Posting and round methods are fallible because the
/// backing [`BoardTransport`] may be remote; the in-process backend
/// never fails.
pub struct BulletinBoard<M> {
    transport: Arc<dyn BoardTransport<M>>,
    meter: CommMeter,
    audit: bool,
}

impl<M> std::fmt::Debug for BulletinBoard<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BulletinBoard")
            .field("backend", &self.transport.backend_name())
            .field("audit", &self.audit)
            .finish_non_exhaustive()
    }
}

impl<M> Clone for BulletinBoard<M> {
    fn clone(&self) -> Self {
        BulletinBoard {
            transport: Arc::clone(&self.transport),
            meter: self.meter.clone(),
            audit: self.audit,
        }
    }
}

impl<M: Clone + Send + Sync + 'static> Default for BulletinBoard<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M: Clone + Send + Sync + 'static> BulletinBoard<M> {
    /// Creates an empty in-process board with a fresh meter.
    pub fn new() -> Self {
        Self::with_transport(Arc::new(InProcessTransport::new()))
    }

    /// Creates a board that meters traffic but does not retain posting
    /// payloads — used by large-scale experiments where the audit log
    /// would dominate memory.
    pub fn metered_only() -> Self {
        let mut b = Self::new();
        b.audit = false;
        b
    }

    /// Creates a board over an explicit transport backend.
    pub fn with_transport(transport: Arc<dyn BoardTransport<M>>) -> Self {
        BulletinBoard { transport, meter: CommMeter::new(), audit: true }
    }

    /// Disables (or re-enables) payload retention: with `audit` off the
    /// board meters traffic but forwards nothing to the transport.
    #[must_use]
    pub fn with_audit(mut self, audit: bool) -> Self {
        self.audit = audit;
        self
    }
}

impl<M: WireMessage + Clone + Send + Sync + 'static> BulletinBoard<M> {
    /// Connects to a remote `board-server` at `addr` with the default
    /// [`crate::tcp::TcpOptions`] (connect retry + I/O timeouts).
    ///
    /// # Errors
    ///
    /// Returns [`BoardError::Io`] if the server stays unreachable past
    /// the retry budget.
    pub fn connect_tcp(addr: std::net::SocketAddr) -> Result<Self, BoardError> {
        Self::connect_tcp_with(addr, crate::tcp::TcpOptions::default())
    }

    /// Like [`BulletinBoard::connect_tcp`] with explicit
    /// [`crate::tcp::TcpOptions`] — the hook for tuning the pipelining
    /// window (`pipeline_window: 1` restores strict lockstep posting)
    /// or frame-chunking thresholds.
    ///
    /// # Errors
    ///
    /// Returns [`BoardError::Io`] if the server stays unreachable past
    /// the retry budget.
    pub fn connect_tcp_with(
        addr: std::net::SocketAddr,
        opts: crate::tcp::TcpOptions,
    ) -> Result<Self, BoardError> {
        let t = crate::tcp::TcpTransport::connect(addr, opts)?;
        Ok(Self::with_transport(Arc::new(t)))
    }
}

impl<M> BulletinBoard<M> {
    /// The communication meter recording all posts.
    pub fn meter(&self) -> &CommMeter {
        &self.meter
    }

    /// A short label naming the transport backend (diagnostics).
    pub fn backend_name(&self) -> &'static str {
        self.transport.backend_name()
    }

    /// The current round.
    ///
    /// # Errors
    ///
    /// Propagates transport failures (remote backends only).
    pub fn round(&self) -> Result<u64, BoardError> {
        self.transport.round()
    }

    /// Advances to the next round (the synchronous model's clock tick).
    ///
    /// # Errors
    ///
    /// Propagates transport failures (remote backends only).
    pub fn advance_round(&self) -> Result<u64, BoardError> {
        self.transport.advance_round()
    }

    /// Posts a message, recording `elements` ring elements /
    /// `bytes` bytes of traffic under `phase`.
    ///
    /// # Errors
    ///
    /// Propagates transport failures (remote backends only).
    pub fn post(
        &self,
        from: RoleId,
        message: M,
        phase: &str,
        elements: u64,
        bytes: u64,
    ) -> Result<(), BoardError> {
        self.meter.record(phase, elements, bytes);
        if !self.audit {
            return Ok(());
        }
        self.transport.post_batch(vec![PostRecord {
            from,
            phase: Arc::from(phase),
            message,
            elements,
            bytes,
        }])
    }

    /// Posts a batch of same-sized messages from one role under one
    /// phase, taking the transport's write lock (or sending one TCP
    /// frame) **once** for the whole batch. The phase label is
    /// allocated once and shared by every posting, and in-process
    /// appends are a monomorphic slice loop — no per-message
    /// allocation or dispatch.
    ///
    /// # Errors
    ///
    /// Propagates transport failures (remote backends only).
    pub fn post_batch(
        &self,
        from: RoleId,
        phase: &str,
        messages: &[M],
        elements_each: u64,
        bytes_each: u64,
    ) -> Result<(), BoardError>
    where
        M: Clone,
    {
        let count = messages.len() as u64;
        self.meter.record_many(
            phase,
            elements_each * count,
            bytes_each * count,
            count,
        );
        if !self.audit || messages.is_empty() {
            return Ok(());
        }
        let shared: Arc<str> = Arc::from(phase);
        self.transport.post_slice(&from, &shared, messages, elements_each, bytes_each)
    }

    /// Posts a heterogeneous batch (mixed roles, phases and sizes) in
    /// one transport call — the replay path of the parallel engine's
    /// post buffers. Metering is aggregated per run of equal phase
    /// labels, so a single-phase buffer costs one meter update.
    ///
    /// # Errors
    ///
    /// Propagates transport failures (remote backends only).
    pub fn post_records(&self, records: Vec<PostRecord<M>>) -> Result<(), BoardError> {
        self.post_record_stream(records.into_iter()).map(|_| ())
    }

    /// Streaming variant of [`BulletinBoard::post_records`]: the
    /// transport drains the iterator straight into its log (or wire
    /// frames) while metering is aggregated per run of equal phase
    /// labels on the fly — no intermediate `Vec` of records is ever
    /// built. This is the parallel engine's buffer-flush hot path.
    ///
    /// # Errors
    ///
    /// Propagates transport failures (remote backends only).
    pub fn post_record_stream(
        &self,
        records: impl Iterator<Item = PostRecord<M>>,
    ) -> Result<u64, BoardError> {
        let mut metered =
            MeteredRecords { inner: records, meter: &self.meter, run: None };
        if !self.audit {
            let n = (&mut metered).count() as u64;
            return Ok(n);
        }
        self.transport.post_stream(&mut metered)
    }

    /// Number of postings so far.
    ///
    /// # Errors
    ///
    /// Propagates transport failures (remote backends only).
    pub fn len(&self) -> Result<usize, BoardError> {
        self.transport.len()
    }

    /// Whether the board is empty.
    ///
    /// # Errors
    ///
    /// Propagates transport failures (remote backends only).
    pub fn is_empty(&self) -> Result<bool, BoardError> {
        Ok(self.len()? == 0)
    }

    /// Snapshot of all postings (clones).
    ///
    /// # Errors
    ///
    /// Propagates transport failures (remote backends only).
    pub fn postings(&self) -> Result<Vec<Posting<M>>, BoardError> {
        self.transport.read_from(0)
    }

    /// Snapshot of the postings at sequence positions `>= cursor` —
    /// the distributed-transform read-back primitive: a worker records
    /// the board position before a batch's posting run, waits for the
    /// run to land, and reads exactly the new records without
    /// re-cloning history.
    ///
    /// # Errors
    ///
    /// Propagates transport failures (remote backends only).
    pub fn postings_from(&self, cursor: usize) -> Result<Vec<Posting<M>>, BoardError> {
        self.transport.read_from(cursor)
    }

    /// Snapshot of the postings made in `round` — `O(round size)`, via
    /// the transport's per-round index.
    ///
    /// # Errors
    ///
    /// Propagates transport failures (remote backends only).
    pub fn postings_in_round(&self, round: u64) -> Result<Vec<Posting<M>>, BoardError> {
        self.transport.read_round(round)
    }

    /// Applies `f` to each posting without cloning (in-process
    /// backends iterate under the read lock).
    ///
    /// # Errors
    ///
    /// Propagates transport failures (remote backends only).
    pub fn for_each<F: FnMut(&Posting<M>)>(&self, mut f: F) -> Result<(), BoardError> {
        self.transport.for_each(&mut f)
    }

    /// Applies `f` to each posting of `round` without cloning and
    /// without scanning other rounds.
    ///
    /// # Errors
    ///
    /// Propagates transport failures (remote backends only).
    pub fn for_each_in_round<F: FnMut(&Posting<M>)>(
        &self,
        round: u64,
        mut f: F,
    ) -> Result<(), BoardError> {
        self.transport.for_each_in_round(round, &mut f)
    }

    /// Drops all postings of sealed rounds before `round` — the
    /// streaming driver's **retention watermark**. Sequence numbers and
    /// the round clock are unaffected ([`Self::len`] keeps counting
    /// dropped postings, so cursor-synchronised readers are
    /// undisturbed), but reads that dip below the watermark fail with
    /// [`BoardError::Protocol`]. Backends without local storage ignore
    /// the request.
    ///
    /// # Errors
    ///
    /// Propagates transport failures (remote backends only).
    pub fn retain_rounds_from(&self, round: u64) -> Result<(), BoardError> {
        self.transport.retain_rounds_from(round)
    }

    /// Opens a cursor-based subscription: each [`BoardCursor::poll`]
    /// returns only the postings appended since the previous poll, so
    /// a long-lived reader never re-clones history.
    pub fn subscribe(&self) -> BoardCursor<M> {
        BoardCursor { transport: Arc::clone(&self.transport), pos: 0 }
    }

    /// Blocks until the board holds at least `target` postings and
    /// returns the observed length. This is the worker-mode
    /// synchronization primitive: a role-sharded worker waits for the
    /// board to reach the canonical position of its next posting run
    /// before appending, so the global posting order is identical to a
    /// single-process run.
    ///
    /// Polls with a short spin-then-sleep backoff (the in-process
    /// backend resolves in the spin window; TCP backends settle into
    /// millisecond sleeps).
    ///
    /// # Errors
    ///
    /// Propagates transport failures, or [`BoardError::Protocol`] if
    /// `timeout` elapses first (a peer worker died or desynced).
    pub fn wait_len_at_least(
        &self,
        target: usize,
        // lint:allow(determinism): the timeout only bounds polling; no
        // wall-clock value is read into the posting log.
        timeout: std::time::Duration,
    ) -> Result<usize, BoardError> {
        wait_until(timeout, || {
            let len = self.len()?;
            Ok(if len >= target { Some(len) } else { None })
        })
        .map_err(|e| match e {
            WaitError::TimedOut => BoardError::Protocol(format!(
                "timed out waiting for board length >= {target} (a peer worker \
                 may have crashed or fallen behind)"
            )),
            WaitError::Board(b) => b,
        })
    }

    /// Blocks until the board's round clock reaches at least `round`
    /// and returns the observed round. Workers park here at each phase
    /// boundary: the round tick (issued by the leader worker once all
    /// of the round's postings have landed) *is* the YOSO handoff, so
    /// no side channel is needed to release the barrier.
    ///
    /// # Errors
    ///
    /// Propagates transport failures, or [`BoardError::Protocol`] if
    /// `timeout` elapses first.
    pub fn wait_round_at_least(
        &self,
        round: u64,
        // lint:allow(determinism): the timeout only bounds polling; no
        // wall-clock value is read into the posting log.
        timeout: std::time::Duration,
    ) -> Result<u64, BoardError> {
        wait_until(timeout, || {
            let r = self.round()?;
            Ok(if r >= round { Some(r) } else { None })
        })
        .map_err(|e| match e {
            WaitError::TimedOut => BoardError::Protocol(format!(
                "timed out waiting for board round >= {round} (the leader \
                 worker may have crashed before ticking the round clock)"
            )),
            WaitError::Board(b) => b,
        })
    }
}

/// Iterator adapter behind [`BulletinBoard::post_record_stream`]:
/// forwards records unchanged while folding consecutive equal-phase
/// records into one [`CommMeter::record_many`] call per run. The
/// trailing run is flushed when the inner iterator ends (and on drop,
/// so a transport that stops draining early still meters what it
/// consumed).
struct MeteredRecords<'a, M, I: Iterator<Item = PostRecord<M>>> {
    inner: I,
    meter: &'a CommMeter,
    run: Option<(Arc<str>, u64, u64, u64)>,
}

impl<M, I: Iterator<Item = PostRecord<M>>> MeteredRecords<'_, M, I> {
    fn flush_run(&mut self) {
        if let Some((phase, elements, bytes, count)) = self.run.take() {
            self.meter.record_many(&phase, elements, bytes, count);
        }
    }
}

impl<M, I: Iterator<Item = PostRecord<M>>> Iterator for MeteredRecords<'_, M, I> {
    type Item = PostRecord<M>;

    fn next(&mut self) -> Option<PostRecord<M>> {
        match self.inner.next() {
            Some(r) => {
                match &mut self.run {
                    Some((phase, elements, bytes, count))
                        if phase.as_ref() == r.phase.as_ref() =>
                    {
                        *elements += r.elements;
                        *bytes += r.bytes;
                        *count += 1;
                    }
                    _ => {
                        self.flush_run();
                        self.run =
                            Some((Arc::clone(&r.phase), r.elements, r.bytes, 1));
                    }
                }
                Some(r)
            }
            None => {
                self.flush_run();
                None
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl<M, I: Iterator<Item = PostRecord<M>>> Drop for MeteredRecords<'_, M, I> {
    fn drop(&mut self) {
        self.flush_run();
    }
}

enum WaitError {
    TimedOut,
    Board(BoardError),
}

/// Polls `probe` with spin-then-sleep backoff until it yields a value
/// or `timeout` elapses. First ~64 probes yield the CPU only (the
/// in-process fast path), then sleeps escalate 1ms → 20ms.
fn wait_until<T>(
    // lint:allow(determinism): timing here decides only *when* we give
    // up waiting, never *what* gets posted — a run that doesn't time
    // out produces the same transcript regardless of poll timing.
    timeout: std::time::Duration,
    mut probe: impl FnMut() -> Result<Option<T>, BoardError>,
) -> Result<T, WaitError> {
    // lint:allow(determinism): see the `timeout` parameter — timeout
    // bookkeeping only, nothing time-derived reaches the board.
    use std::time::{Duration, Instant};
    let start = Instant::now();
    let mut spins = 0u32;
    loop {
        match probe().map_err(WaitError::Board)? {
            Some(v) => return Ok(v),
            None => {
                if start.elapsed() >= timeout {
                    return Err(WaitError::TimedOut);
                }
                if spins < 64 {
                    spins += 1;
                    std::thread::yield_now();
                } else {
                    let ms = (u64::from(spins) / 64).min(20);
                    spins = spins.saturating_add(64);
                    std::thread::sleep(Duration::from_millis(ms.max(1)));
                }
            }
        }
    }
}

/// Rebuilds per-phase communication stats from a posting log, in label
/// order — the cross-worker metering aggregation path. Every posting
/// carries its metered `elements`/`bytes`, so a reader holding the
/// full log (an auditor, or a worker whose local [`CommMeter`] saw
/// only its own share of the posts) reconstructs exactly what a
/// single-process [`CommMeter::phases`] would report.
pub fn phases_from_postings<M>(
    postings: &[Posting<M>],
) -> Vec<(String, crate::metrics::PhaseStats)> {
    let mut by_phase =
        std::collections::BTreeMap::<String, crate::metrics::PhaseStats>::new();
    for p in postings {
        let s = by_phase.entry(p.phase.to_string()).or_default();
        s.elements += p.elements;
        s.bytes += p.bytes;
        s.messages += 1;
    }
    by_phase.into_iter().collect()
}

/// The seed of the 64-bit FNV-1a hash over transcript lines.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// The 64-bit FNV-1a multiplier.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental, clone-free replacement for
/// [`phases_from_postings`]: consumes board rounds as they seal,
/// folding each posting into per-phase communication stats and a
/// 64-bit FNV-1a hash of the canonical transcript line
/// (`round|from|phase|message`, the `board-stats --dump` format), so
/// a streaming driver never materializes the posting history. After a
/// [`drain_sealed`](Self::drain_sealed) the caller may hand the
/// consumed prefix to [`BulletinBoard::retain_rounds_from`] — the
/// accumulator never re-reads a round it has absorbed.
#[derive(Debug, Clone)]
pub struct PhaseAccumulator {
    by_phase: std::collections::BTreeMap<String, crate::metrics::PhaseStats>,
    next_round: u64,
    postings: u64,
    hash: u64,
    line: String,
}

impl Default for PhaseAccumulator {
    fn default() -> Self {
        Self::new()
    }
}

impl PhaseAccumulator {
    /// An empty accumulator positioned before round 0.
    pub fn new() -> Self {
        PhaseAccumulator {
            by_phase: std::collections::BTreeMap::new(),
            next_round: 0,
            postings: 0,
            hash: FNV_OFFSET,
            line: String::new(),
        }
    }

    /// Folds one posting into the stats and the transcript hash.
    fn absorb<M: std::fmt::Debug>(&mut self, p: &Posting<M>) {
        use std::fmt::Write as _;
        let s = self.by_phase.entry(p.phase.to_string()).or_default();
        s.elements += p.elements;
        s.bytes += p.bytes;
        s.messages += 1;
        self.line.clear();
        let _ = writeln!(self.line, "{}|{}|{}|{:?}", p.round, p.from, p.phase, p.message);
        for &b in self.line.as_bytes() {
            self.hash = (self.hash ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
        self.postings += 1;
    }

    /// Consumes every sealed round not yet absorbed (clone-free) and
    /// returns the board's current (still open) round. The caller must
    /// guarantee those rounds are complete — in the engine this holds
    /// at stage boundaries, after the round-advance barrier.
    ///
    /// # Errors
    ///
    /// Propagates transport failures (remote backends only).
    pub fn drain_sealed<M: Clone + Send + Sync + std::fmt::Debug + 'static>(
        &mut self,
        board: &BulletinBoard<M>,
    ) -> Result<u64, BoardError> {
        let open = board.round()?;
        while self.next_round < open {
            let round = self.next_round;
            board.for_each_in_round(round, |p| self.absorb(p))?;
            self.next_round += 1;
        }
        Ok(open)
    }

    /// Consumes the sealed rounds *and* the currently open round — the
    /// end-of-run drain, after the final post.
    ///
    /// # Errors
    ///
    /// Propagates transport failures (remote backends only).
    pub fn finish<M: Clone + Send + Sync + std::fmt::Debug + 'static>(
        &mut self,
        board: &BulletinBoard<M>,
    ) -> Result<(), BoardError> {
        let open = self.drain_sealed(board)?;
        board.for_each_in_round(open, |p| self.absorb(p))?;
        self.next_round = open + 1;
        Ok(())
    }

    /// The first round not yet absorbed — the retention watermark to
    /// pass to [`BulletinBoard::retain_rounds_from`].
    pub fn next_round(&self) -> u64 {
        self.next_round
    }

    /// Number of postings absorbed so far.
    pub fn postings(&self) -> u64 {
        self.postings
    }

    /// The FNV-1a 64 hash of every absorbed transcript line.
    pub fn transcript_hash(&self) -> u64 {
        self.hash
    }

    /// Per-phase stats in label order — the same shape
    /// [`phases_from_postings`] returns from a materialized log.
    pub fn phases(&self) -> Vec<(String, crate::metrics::PhaseStats)> {
        self.by_phase.iter().map(|(k, v)| (k.clone(), *v)).collect()
    }
}

/// A stateful reader over a board transport: remembers how far it has
/// read and fetches only the suffix on each poll.
pub struct BoardCursor<M> {
    transport: Arc<dyn BoardTransport<M>>,
    pos: usize,
}

impl<M> std::fmt::Debug for BoardCursor<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BoardCursor")
            .field("backend", &self.transport.backend_name())
            .field("pos", &self.pos)
            .finish_non_exhaustive()
    }
}

impl<M> BoardCursor<M> {
    /// Postings appended since the last poll (empty if none).
    ///
    /// # Errors
    ///
    /// Propagates transport failures (remote backends only).
    pub fn poll(&mut self) -> Result<Vec<Posting<M>>, BoardError> {
        let batch = self.transport.read_from(self.pos)?;
        self.pos += batch.len();
        Ok(batch)
    }

    /// Number of postings consumed so far.
    pub fn position(&self) -> usize {
        self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn post_and_read_back() {
        let board: BulletinBoard<String> = BulletinBoard::new();
        assert!(board.is_empty().unwrap());
        board.post(RoleId::new("c1", 0), "hello".into(), "offline", 2, 16).unwrap();
        board.advance_round().unwrap();
        board.post(RoleId::new("c1", 1), "world".into(), "online", 1, 8).unwrap();
        assert_eq!(board.len().unwrap(), 2);
        assert_eq!(board.round().unwrap(), 1);
        let r0 = board.postings_in_round(0).unwrap();
        assert_eq!(r0.len(), 1);
        assert_eq!(r0[0].message, "hello");
        assert_eq!(r0[0].elements, 2);
        let r1 = board.postings_in_round(1).unwrap();
        assert_eq!(r1[0].from, RoleId::new("c1", 1));
    }

    #[test]
    fn metering_accumulates() {
        let board: BulletinBoard<u64> = BulletinBoard::new();
        board.post(RoleId::new("c", 0), 1, "offline", 3, 24).unwrap();
        board.post(RoleId::new("c", 1), 2, "offline", 5, 40).unwrap();
        board.post(RoleId::new("c", 2), 3, "online", 1, 8).unwrap();
        let stats = board.meter().phase("offline");
        assert_eq!(stats.elements, 8);
        assert_eq!(stats.bytes, 64);
        assert_eq!(stats.messages, 2);
        assert_eq!(board.meter().phase("online").elements, 1);
        assert_eq!(board.meter().total().elements, 9);
    }

    #[test]
    fn board_clones_share_state() {
        let board: BulletinBoard<u64> = BulletinBoard::new();
        let board2 = board.clone();
        board.post(RoleId::new("c", 0), 7, "x", 1, 8).unwrap();
        assert_eq!(board2.len().unwrap(), 1);
        assert_eq!(board2.meter().total().elements, 1);
    }

    #[test]
    fn post_batch_matches_per_post_metering_and_log() {
        let a: BulletinBoard<u64> = BulletinBoard::new();
        let b: BulletinBoard<u64> = BulletinBoard::new();
        let from = RoleId::new("c", 3);
        for m in 0..5u64 {
            a.post(from.clone(), m, "offline/x", 2, 16).unwrap();
        }
        b.post_batch(from, "offline/x", &[0, 1, 2, 3, 4], 2, 16).unwrap();
        assert_eq!(a.meter().phase("offline/x"), b.meter().phase("offline/x"));
        let (pa, pb) = (a.postings().unwrap(), b.postings().unwrap());
        assert_eq!(pa.len(), pb.len());
        for (x, y) in pa.iter().zip(pb.iter()) {
            assert_eq!((x.round, &x.from, &*x.phase, x.message), (y.round, &y.from, &*y.phase, y.message));
        }
    }

    #[test]
    fn post_records_mixed_phases_meter_correctly() {
        let board: BulletinBoard<u64> = BulletinBoard::new();
        let recs = vec![
            PostRecord {
                from: RoleId::new("c", 0),
                phase: Arc::from("a"),
                message: 1,
                elements: 2,
                bytes: 16,
            },
            PostRecord {
                from: RoleId::new("c", 1),
                phase: Arc::from("a"),
                message: 2,
                elements: 3,
                bytes: 24,
            },
            PostRecord {
                from: RoleId::new("c", 2),
                phase: Arc::from("b"),
                message: 3,
                elements: 1,
                bytes: 8,
            },
        ];
        board.post_records(recs).unwrap();
        assert_eq!(board.meter().phase("a").elements, 5);
        assert_eq!(board.meter().phase("a").messages, 2);
        assert_eq!(board.meter().phase("b").bytes, 8);
        assert_eq!(board.len().unwrap(), 3);
    }

    #[test]
    fn post_record_stream_matches_vec_flush() {
        let rec = |i: usize, phase: &str| PostRecord {
            from: RoleId::new("c", i),
            phase: Arc::from(phase),
            message: i as u64,
            elements: 2,
            bytes: 16,
        };
        let a: BulletinBoard<u64> = BulletinBoard::new();
        let b: BulletinBoard<u64> = BulletinBoard::new();
        let records = vec![rec(0, "a"), rec(1, "a"), rec(2, "b"), rec(3, "a")];
        a.post_records(records.clone()).unwrap();
        let n = b.post_record_stream(records.into_iter()).unwrap();
        assert_eq!(n, 4);
        assert_eq!(a.meter().phases(), b.meter().phases());
        assert_eq!(a.meter().phase("a").messages, 3);
        let (pa, pb) = (a.postings().unwrap(), b.postings().unwrap());
        assert_eq!(pa.len(), pb.len());
        for (x, y) in pa.iter().zip(pb.iter()) {
            assert_eq!((x.round, &x.from, &*x.phase, x.message), (y.round, &y.from, &*y.phase, y.message));
        }
    }

    #[test]
    fn phase_accumulator_matches_materialized_log_and_survives_retention() {
        let board: BulletinBoard<u64> = BulletinBoard::new();
        let mut acc = PhaseAccumulator::new();
        for round in 0..3u64 {
            for i in 0..4usize {
                board
                    .post(RoleId::new("c", i), round * 10 + i as u64, "offline/x", 2, 16)
                    .unwrap();
            }
            board.advance_round().unwrap();
            // Drain the sealed rounds and drop them behind the
            // watermark: the accumulator never re-reads them.
            acc.drain_sealed(&board).unwrap();
            board.retain_rounds_from(acc.next_round()).unwrap();
        }
        board.post(RoleId::new("c", 9), 99, "online/y", 1, 8).unwrap();
        acc.finish(&board).unwrap();

        // Reference: the same postings on a fully materialized board.
        let full: BulletinBoard<u64> = BulletinBoard::new();
        let mut full_acc = PhaseAccumulator::new();
        for round in 0..3u64 {
            for i in 0..4usize {
                full.post(RoleId::new("c", i), round * 10 + i as u64, "offline/x", 2, 16)
                    .unwrap();
            }
            full.advance_round().unwrap();
        }
        full.post(RoleId::new("c", 9), 99, "online/y", 1, 8).unwrap();
        full_acc.finish(&full).unwrap();

        assert_eq!(acc.phases(), phases_from_postings(&full.postings().unwrap()));
        assert_eq!(acc.postings(), 13);
        assert_eq!(acc.transcript_hash(), full_acc.transcript_hash());

        // The hash covers payloads: one changed message diverges.
        let other: BulletinBoard<u64> = BulletinBoard::new();
        let mut other_acc = PhaseAccumulator::new();
        other.post(RoleId::new("c", 9), 98, "online/y", 1, 8).unwrap();
        other_acc.finish(&other).unwrap();
        let mut same_acc = PhaseAccumulator::new();
        let same: BulletinBoard<u64> = BulletinBoard::new();
        same.post(RoleId::new("c", 9), 98, "online/y", 1, 8).unwrap();
        same_acc.finish(&same).unwrap();
        assert_eq!(other_acc.transcript_hash(), same_acc.transcript_hash());
        assert_ne!(other_acc.transcript_hash(), acc.transcript_hash());
    }

    #[test]
    fn metered_only_skips_storage_but_counts() {
        let board: BulletinBoard<u64> = BulletinBoard::metered_only();
        board.post(RoleId::new("c", 0), 1, "x", 4, 32).unwrap();
        board.post_batch(RoleId::new("c", 1), "x", &[0, 1, 2], 1, 8).unwrap();
        assert_eq!(board.len().unwrap(), 0);
        assert_eq!(board.meter().phase("x").messages, 4);
        assert_eq!(board.meter().phase("x").elements, 7);
    }

    #[test]
    fn wait_len_returns_immediately_when_satisfied() {
        let board: BulletinBoard<u64> = BulletinBoard::new();
        board.post(RoleId::new("c", 0), 1, "x", 1, 8).unwrap();
        let len = board
            .wait_len_at_least(1, std::time::Duration::from_secs(5))
            .unwrap();
        assert_eq!(len, 1);
    }

    #[test]
    fn wait_len_times_out_with_protocol_error() {
        let board: BulletinBoard<u64> = BulletinBoard::new();
        let err = board
            .wait_len_at_least(1, std::time::Duration::from_millis(10))
            .unwrap_err();
        assert!(matches!(err, BoardError::Protocol(_)));
    }

    #[test]
    fn wait_round_unblocks_on_cross_thread_tick() {
        let board: BulletinBoard<u64> = BulletinBoard::new();
        let clone = board.clone();
        std::thread::scope(|s| {
            let waiter = s.spawn(move || {
                clone.wait_round_at_least(2, std::time::Duration::from_secs(30))
            });
            board.advance_round().unwrap();
            board.advance_round().unwrap();
            assert_eq!(waiter.join().unwrap().unwrap(), 2);
        });
    }

    #[test]
    fn phases_from_postings_matches_meter() {
        let board: BulletinBoard<u64> = BulletinBoard::new();
        board.post(RoleId::new("c", 0), 1, "b/phase", 3, 24).unwrap();
        board.post(RoleId::new("c", 1), 2, "a/phase", 2, 16).unwrap();
        board.post(RoleId::new("c", 2), 3, "a/phase", 5, 40).unwrap();
        let rebuilt = phases_from_postings(&board.postings().unwrap());
        assert_eq!(rebuilt, board.meter().phases());
    }

    #[test]
    fn cursor_subscription_sees_only_new_posts() {
        let board: BulletinBoard<u64> = BulletinBoard::new();
        let mut cur = board.subscribe();
        board.post(RoleId::new("c", 0), 1, "x", 1, 8).unwrap();
        assert_eq!(cur.poll().unwrap().len(), 1);
        assert!(cur.poll().unwrap().is_empty());
        board.post_batch(RoleId::new("c", 1), "x", &[0, 1, 2, 3], 1, 8).unwrap();
        let batch = cur.poll().unwrap();
        assert_eq!(batch.len(), 4);
        assert_eq!(cur.position(), 5);
    }
}
