//! The bulletin board: authenticated broadcast with metering.
//!
//! In the YOSO model every message — point-to-point included — is
//! posted to a public board (encrypted to its recipient when private),
//! so broadcast and P2P cost the same (§3.3). The board is therefore
//! the *single* communication channel of the protocol, and metering
//! postings measures the protocol's entire communication.

use parking_lot::RwLock;
use std::sync::Arc;

use crate::metrics::CommMeter;
use crate::role::RoleId;

/// One posting on the board.
#[derive(Debug, Clone)]
pub struct Posting<M> {
    /// The posting round.
    pub round: u64,
    /// The author role.
    pub from: RoleId,
    /// The protocol phase the post was metered under.
    pub phase: String,
    /// The message payload.
    pub message: M,
}

/// An append-only bulletin board carrying messages of type `M`,
/// shared between the simulated roles.
///
/// Every post records its size with the [`CommMeter`] under the
/// supplied phase label; experiments read the meter, tests read the
/// postings.
#[derive(Debug, Clone)]
pub struct BulletinBoard<M> {
    inner: Arc<RwLock<BoardInner<M>>>,
    meter: CommMeter,
    audit: bool,
}

#[derive(Debug)]
struct BoardInner<M> {
    postings: Vec<Posting<M>>,
    round: u64,
}

impl<M: Clone> Default for BulletinBoard<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M: Clone> BulletinBoard<M> {
    /// Creates an empty board with a fresh meter.
    pub fn new() -> Self {
        BulletinBoard {
            inner: Arc::new(RwLock::new(BoardInner { postings: Vec::new(), round: 0 })),
            meter: CommMeter::new(),
            audit: true,
        }
    }

    /// Creates a board that meters traffic but does not retain posting
    /// payloads — used by large-scale experiments where the audit log
    /// would dominate memory.
    pub fn metered_only() -> Self {
        BulletinBoard {
            inner: Arc::new(RwLock::new(BoardInner { postings: Vec::new(), round: 0 })),
            meter: CommMeter::new(),
            audit: false,
        }
    }

    /// The communication meter recording all posts.
    pub fn meter(&self) -> &CommMeter {
        &self.meter
    }

    /// The current round.
    pub fn round(&self) -> u64 {
        self.inner.read().round
    }

    /// Advances to the next round (the synchronous model's clock tick).
    pub fn advance_round(&self) -> u64 {
        let mut g = self.inner.write();
        g.round += 1;
        g.round
    }

    /// Posts a message, recording `elements` ring elements /
    /// `bytes` bytes of traffic under `phase`.
    pub fn post(&self, from: RoleId, message: M, phase: &str, elements: u64, bytes: u64) {
        self.meter.record(phase, elements, bytes);
        if !self.audit {
            return;
        }
        let mut g = self.inner.write();
        let round = g.round;
        g.postings.push(Posting { round, from, phase: phase.to_string(), message });
    }

    /// Number of postings so far.
    pub fn len(&self) -> usize {
        self.inner.read().postings.len()
    }

    /// Whether the board is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of all postings (clones).
    pub fn postings(&self) -> Vec<Posting<M>> {
        self.inner.read().postings.clone()
    }

    /// Snapshot of the postings made in `round`.
    pub fn postings_in_round(&self, round: u64) -> Vec<Posting<M>> {
        self.inner
            .read()
            .postings
            .iter()
            .filter(|p| p.round == round)
            .cloned()
            .collect()
    }

    /// Applies `f` to each posting without cloning.
    pub fn for_each<Fn2: FnMut(&Posting<M>)>(&self, mut f: Fn2) {
        for p in self.inner.read().postings.iter() {
            f(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn post_and_read_back() {
        let board: BulletinBoard<String> = BulletinBoard::new();
        assert!(board.is_empty());
        board.post(RoleId::new("c1", 0), "hello".into(), "offline", 2, 16);
        board.advance_round();
        board.post(RoleId::new("c1", 1), "world".into(), "online", 1, 8);
        assert_eq!(board.len(), 2);
        assert_eq!(board.round(), 1);
        let r0 = board.postings_in_round(0);
        assert_eq!(r0.len(), 1);
        assert_eq!(r0[0].message, "hello");
        let r1 = board.postings_in_round(1);
        assert_eq!(r1[0].from, RoleId::new("c1", 1));
    }

    #[test]
    fn metering_accumulates() {
        let board: BulletinBoard<u64> = BulletinBoard::new();
        board.post(RoleId::new("c", 0), 1, "offline", 3, 24);
        board.post(RoleId::new("c", 1), 2, "offline", 5, 40);
        board.post(RoleId::new("c", 2), 3, "online", 1, 8);
        let stats = board.meter().phase("offline");
        assert_eq!(stats.elements, 8);
        assert_eq!(stats.bytes, 64);
        assert_eq!(stats.messages, 2);
        assert_eq!(board.meter().phase("online").elements, 1);
        assert_eq!(board.meter().total().elements, 9);
    }

    #[test]
    fn board_clones_share_state() {
        let board: BulletinBoard<u64> = BulletinBoard::new();
        let board2 = board.clone();
        board.post(RoleId::new("c", 0), 7, "x", 1, 8);
        assert_eq!(board2.len(), 1);
        assert_eq!(board2.meter().total().elements, 1);
    }
}
