//! TCP bulletin-board backend: a length-prefix-framed client/server
//! pair so committee drivers and auditors run as separate OS
//! processes.
//!
//! # Wire protocol
//!
//! Every frame is `u32` little-endian length followed by that many
//! body bytes; the first body byte is an opcode. Requests:
//!
//! | op   | name          | body                                        |
//! |------|---------------|---------------------------------------------|
//! | 0x01 | `PostBatch`   | `u32` count, then per record: committee str, index `u64`, phase str, elements `u64`, bytes `u64`, payload bytes |
//! | 0x02 | `AdvanceRound`| —                                           |
//! | 0x03 | `GetRound`    | —                                           |
//! | 0x04 | `GetLen`      | —                                           |
//! | 0x05 | `ReadRound`   | round `u64`                                 |
//! | 0x06 | `ReadFrom`    | cursor `u64`                                |
//! | 0x07 | `Shutdown`    | —                                           |
//!
//! Responses: `0x80` ok, `0x81` value (`u64`), `0x82` postings
//! (`u32` count, then per posting: round `u64`, committee str, index
//! `u64`, phase str, elements `u64`, bytes `u64`, payload bytes),
//! `0xEE` error (str). Strings and byte strings are `u32`-length
//! prefixed.
//!
//! # Sequencing = determinism
//!
//! The server appends each `PostBatch` frame **atomically** under one
//! lock, in frame-arrival order, tagging records with the current
//! round — the same total-order contract as the in-process backend's
//! single write lock. A driver posting from one logical thread (the
//! engine's coordinator, which already serializes the parallel
//! workers' buffers in item order) therefore produces a byte-identical
//! posting log over TCP and in-process; the transport-parity suite in
//! `yoso-core` asserts exactly that. Message payloads cross the wire
//! via the deterministic [`WireMessage`] codec, never a `Debug` or
//! serde format.
//!
//! The server stores payloads as opaque bytes — it needs no knowledge
//! of the message type, so one `board-server` binary serves any
//! protocol. Clients retry connects (the server may still be starting)
//! and idempotent reads; posts and round advances are never retried
//! blindly, so a hard failure surfaces as [`BoardError::Io`] instead
//! of a duplicated posting.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
// lint:allow(determinism): `Duration` is used only for socket
// timeouts and retry backoff — no wall-clock value is ever read or
// enters the posting log, so the transcript stays time-independent.
use std::time::Duration;

use parking_lot::Mutex;

use crate::board::Posting;
use crate::role::RoleId;
use crate::transport::{
    put_bytes, put_str, put_u32, put_u64, BoardError, BoardTransport, PostRecord, RoundLog,
    WireCursor, WireMessage,
};

/// Frames larger than this are rejected (corrupt length prefix guard).
const MAX_FRAME: usize = 64 << 20;

mod op {
    pub const POST_BATCH: u8 = 0x01;
    pub const ADVANCE_ROUND: u8 = 0x02;
    pub const GET_ROUND: u8 = 0x03;
    pub const GET_LEN: u8 = 0x04;
    pub const READ_ROUND: u8 = 0x05;
    pub const READ_FROM: u8 = 0x06;
    pub const SHUTDOWN: u8 = 0x07;
    pub const RESP_OK: u8 = 0x80;
    pub const RESP_VALUE: u8 = 0x81;
    pub const RESP_POSTINGS: u8 = 0x82;
    pub const RESP_ERR: u8 = 0xEE;
}

fn io_err(context: &str, e: &std::io::Error) -> BoardError {
    BoardError::Io(format!("{context}: {e}"))
}

/// Writes one length-prefixed frame.
fn write_frame(stream: &mut TcpStream, body: &[u8]) -> Result<(), BoardError> {
    let len = (body.len() as u32).to_le_bytes();
    stream.write_all(&len).map_err(|e| io_err("write frame length", &e))?;
    stream.write_all(body).map_err(|e| io_err("write frame body", &e))?;
    stream.flush().map_err(|e| io_err("flush frame", &e))
}

/// Reads one length-prefixed frame. `Ok(None)` means the peer closed
/// the connection cleanly before a new frame began.
fn read_frame(stream: &mut TcpStream) -> Result<Option<Vec<u8>>, BoardError> {
    let mut len_buf = [0u8; 4];
    match stream.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(io_err("read frame length", &e)),
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(BoardError::Protocol(format!("frame of {len} bytes exceeds cap")));
    }
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body).map_err(|e| io_err("read frame body", &e))?;
    Ok(Some(body))
}

/// One posting as the server stores it: all board metadata plus the
/// message payload as opaque bytes.
#[derive(Debug, Clone)]
struct RawPosting {
    round: u64,
    committee: String,
    index: u64,
    phase: String,
    elements: u64,
    bytes: u64,
    payload: Vec<u8>,
}

fn encode_raw_posting(out: &mut Vec<u8>, p: &RawPosting) {
    put_u64(out, p.round);
    put_str(out, &p.committee);
    put_u64(out, p.index);
    put_str(out, &p.phase);
    put_u64(out, p.elements);
    put_u64(out, p.bytes);
    put_bytes(out, &p.payload);
}

fn decode_posting<M: WireMessage>(cur: &mut WireCursor<'_>) -> Result<Posting<M>, BoardError> {
    let round = cur.u64()?;
    let committee = cur.str()?.to_string();
    let index = cur.u64()? as usize;
    let phase: Arc<str> = Arc::from(cur.str()?);
    let elements = cur.u64()?;
    let bytes = cur.u64()?;
    let payload = cur.bytes()?;
    let mut pc = WireCursor::new(payload);
    let message = M::decode(&mut pc)?;
    Ok(Posting { round, from: RoleId::new(committee, index), phase, message, elements, bytes })
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

/// State shared between the accept loop and connection handlers.
#[derive(Debug, Default)]
struct ServerShared {
    log: Mutex<RoundLog<RawPosting>>,
    shutdown: AtomicBool,
}

impl ServerShared {
    /// Handles one decoded request body, returning the response body.
    fn dispatch(&self, body: &[u8]) -> Vec<u8> {
        match self.try_dispatch(body) {
            Ok(resp) => resp,
            Err(e) => {
                let mut out = vec![op::RESP_ERR];
                put_str(&mut out, &e.to_string());
                out
            }
        }
    }

    fn try_dispatch(&self, body: &[u8]) -> Result<Vec<u8>, BoardError> {
        let mut cur = WireCursor::new(body);
        let opcode = cur.u8()?;
        match opcode {
            op::POST_BATCH => {
                let count = cur.u32()? as usize;
                let mut records = Vec::with_capacity(count);
                for _ in 0..count {
                    let committee = cur.str()?.to_string();
                    let index = cur.u64()?;
                    let phase = cur.str()?.to_string();
                    let elements = cur.u64()?;
                    let bytes = cur.u64()?;
                    let payload = cur.bytes()?.to_vec();
                    records.push((committee, index, phase, elements, bytes, payload));
                }
                // One lock for the whole batch: the atomic append that
                // makes server arrival order the global posting order.
                let mut g = self.log.lock();
                let round = g.round;
                for (committee, index, phase, elements, bytes, payload) in records {
                    g.postings.push(RawPosting {
                        round,
                        committee,
                        index,
                        phase,
                        elements,
                        bytes,
                        payload,
                    });
                }
                Ok(vec![op::RESP_OK])
            }
            op::ADVANCE_ROUND => {
                let round = self.log.lock().advance();
                let mut out = vec![op::RESP_VALUE];
                put_u64(&mut out, round);
                Ok(out)
            }
            op::GET_ROUND => {
                let round = self.log.lock().round;
                let mut out = vec![op::RESP_VALUE];
                put_u64(&mut out, round);
                Ok(out)
            }
            op::GET_LEN => {
                let len = self.log.lock().postings.len() as u64;
                let mut out = vec![op::RESP_VALUE];
                put_u64(&mut out, len);
                Ok(out)
            }
            op::READ_ROUND => {
                let round = cur.u64()?;
                let g = self.log.lock();
                let range = g.round_range(round);
                Ok(encode_postings(&g.postings[range]))
            }
            op::READ_FROM => {
                let cursor = cur.u64()? as usize;
                let g = self.log.lock();
                let lo = cursor.min(g.postings.len());
                Ok(encode_postings(&g.postings[lo..]))
            }
            op::SHUTDOWN => {
                self.shutdown.store(true, Ordering::SeqCst);
                Ok(vec![op::RESP_OK])
            }
            other => Err(BoardError::Protocol(format!("unknown opcode {other:#x}"))),
        }
    }
}

fn encode_postings(postings: &[RawPosting]) -> Vec<u8> {
    let mut out = vec![op::RESP_POSTINGS];
    put_u32(&mut out, postings.len() as u32);
    for p in postings {
        encode_raw_posting(&mut out, p);
    }
    out
}

fn handle_connection(shared: &ServerShared, mut stream: TcpStream) {
    // A finite read timeout lets the handler notice a server shutdown
    // even while a client holds the connection open but idle.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let _ = stream.set_nodelay(true);
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match read_frame(&mut stream) {
            Ok(Some(body)) => {
                let resp = shared.dispatch(&body);
                if write_frame(&mut stream, &resp).is_err() {
                    return;
                }
            }
            Ok(None) => return, // clean disconnect
            Err(BoardError::Io(msg))
                if msg.contains("timed out") || msg.contains("would block") =>
            {
                continue; // idle poll tick; re-check the shutdown flag
            }
            Err(_) => return, // corrupt frame or hard I/O error
        }
    }
}

/// A board server bound to a TCP address, serving any number of
/// clients until shut down (via the wire opcode or [`ServerHandle`]).
#[derive(Debug)]
pub struct BoardServer {
    listener: TcpListener,
    shared: Arc<ServerShared>,
}

impl BoardServer {
    /// Binds the server socket (not yet accepting).
    ///
    /// # Errors
    ///
    /// Returns [`BoardError::Io`] if binding fails.
    pub fn bind(addr: SocketAddr) -> Result<Self, BoardError> {
        let listener = TcpListener::bind(addr).map_err(|e| io_err("bind", &e))?;
        listener.set_nonblocking(true).map_err(|e| io_err("set_nonblocking", &e))?;
        Ok(BoardServer { listener, shared: Arc::new(ServerShared::default()) })
    }

    /// The bound address (with the OS-assigned port when bound to `:0`).
    ///
    /// # Errors
    ///
    /// Returns [`BoardError::Io`] if the socket has no local address.
    pub fn local_addr(&self) -> Result<SocketAddr, BoardError> {
        self.listener.local_addr().map_err(|e| io_err("local_addr", &e))
    }

    /// Serves connections on the calling thread until a `Shutdown`
    /// frame arrives (or the process is killed).
    pub fn serve(self) {
        accept_loop(&self.listener, &self.shared);
    }

    /// Serves connections on a background thread; the returned handle
    /// stops the server when shut down or dropped.
    pub fn spawn(self) -> Result<ServerHandle, BoardError> {
        let addr = self.local_addr()?;
        let shared = Arc::clone(&self.shared);
        let thread = std::thread::Builder::new()
            .name("board-server".into())
            .spawn(move || self.serve())
            .map_err(|e| io_err("spawn server thread", &e))?;
        Ok(ServerHandle { addr, shared, thread: Some(thread) })
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<ServerShared>) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(shared);
                let _ = std::thread::Builder::new()
                    .name("board-conn".into())
                    .spawn(move || handle_connection(&shared, stream));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(1)),
        }
    }
}

/// Handle to a background [`BoardServer`]; shuts the server down when
/// dropped.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<ServerShared>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The server's listening address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the server thread. Connection
    /// handlers notice the flag within their poll tick and exit.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// Client-side knobs: connect retry budget and I/O timeouts.
#[derive(Debug, Clone, Copy)]
pub struct TcpOptions {
    /// Connection attempts before giving up (the server may still be
    /// starting when the committee process launches).
    pub connect_attempts: u32,
    /// Delay between connection attempts.
    pub retry_delay: Duration,
    /// Read/write timeout on the established stream.
    pub io_timeout: Duration,
    /// Extra attempts (with reconnect) for idempotent reads. Posts and
    /// round advances are never retried: a retry after a partially
    /// processed frame could duplicate a posting.
    pub read_retries: u32,
}

impl Default for TcpOptions {
    fn default() -> Self {
        TcpOptions {
            connect_attempts: 50,
            retry_delay: Duration::from_millis(40),
            io_timeout: Duration::from_secs(10),
            read_retries: 3,
        }
    }
}

/// A [`BoardTransport`] over one TCP connection to a `board-server`.
///
/// All requests are serialized on the single connection (one mutex),
/// which is exactly the ordering the determinism argument needs: the
/// posting order the server sees is the order this process issued.
#[derive(Debug)]
pub struct TcpTransport<M> {
    addr: SocketAddr,
    opts: TcpOptions,
    stream: Mutex<Option<TcpStream>>,
    _marker: std::marker::PhantomData<fn() -> M>,
}

impl<M> TcpTransport<M> {
    /// Connects to `addr`, retrying per `opts` while the server comes
    /// up.
    ///
    /// # Errors
    ///
    /// Returns [`BoardError::Io`] if every attempt fails.
    pub fn connect(addr: SocketAddr, opts: TcpOptions) -> Result<Self, BoardError> {
        let stream = connect_with_retry(addr, &opts)?;
        Ok(TcpTransport {
            addr,
            opts,
            stream: Mutex::new(Some(stream)),
            _marker: std::marker::PhantomData,
        })
    }

    /// The server address this transport talks to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Sends `body` and returns the response body. `idempotent`
    /// requests are retried with a fresh connection on I/O failure.
    fn call(&self, body: &[u8], idempotent: bool) -> Result<Vec<u8>, BoardError> {
        let mut guard = self.stream.lock();
        let attempts = 1 + if idempotent { self.opts.read_retries } else { 0 };
        let mut last_err = BoardError::Io("no attempt made".into());
        for attempt in 0..attempts {
            if attempt > 0 {
                std::thread::sleep(self.opts.retry_delay);
            }
            if guard.is_none() {
                match connect_with_retry(self.addr, &self.opts) {
                    Ok(s) => *guard = Some(s),
                    Err(e) => {
                        last_err = e;
                        continue;
                    }
                }
            }
            let Some(stream) = guard.as_mut() else { continue };
            let result = write_frame(stream, body).and_then(|()| read_frame(stream));
            match result {
                Ok(Some(resp)) => return check_response(resp),
                Ok(None) => {
                    last_err = BoardError::Io("server closed the connection".into());
                    *guard = None;
                }
                Err(e) => {
                    last_err = e;
                    *guard = None;
                }
            }
        }
        Err(last_err)
    }
}

fn connect_with_retry(addr: SocketAddr, opts: &TcpOptions) -> Result<TcpStream, BoardError> {
    let mut last = None;
    for attempt in 0..opts.connect_attempts.max(1) {
        if attempt > 0 {
            std::thread::sleep(opts.retry_delay);
        }
        match TcpStream::connect_timeout(&addr, opts.io_timeout) {
            Ok(stream) => {
                let _ = stream.set_nodelay(true);
                let _ = stream.set_read_timeout(Some(opts.io_timeout));
                let _ = stream.set_write_timeout(Some(opts.io_timeout));
                return Ok(stream);
            }
            Err(e) => last = Some(e),
        }
    }
    Err(BoardError::Io(format!(
        "could not connect to board server at {addr} after {} attempts: {}",
        opts.connect_attempts.max(1),
        last.map(|e| e.to_string()).unwrap_or_else(|| "no error".into())
    )))
}

/// Splits a response body into (opcode, payload), surfacing server-side
/// errors as [`BoardError::Protocol`].
fn check_response(resp: Vec<u8>) -> Result<Vec<u8>, BoardError> {
    match resp.first() {
        None => Err(BoardError::Protocol("empty response frame".into())),
        Some(&op::RESP_ERR) => {
            let mut cur = WireCursor::new(&resp[1..]);
            Err(BoardError::Protocol(format!("server error: {}", cur.str()?)))
        }
        Some(_) => Ok(resp),
    }
}

fn expect_value(resp: &[u8]) -> Result<u64, BoardError> {
    let mut cur = WireCursor::new(resp);
    if cur.u8()? != op::RESP_VALUE {
        return Err(BoardError::Protocol("expected value response".into()));
    }
    cur.u64()
}

fn expect_postings<M: WireMessage>(resp: &[u8]) -> Result<Vec<Posting<M>>, BoardError> {
    let mut cur = WireCursor::new(resp);
    if cur.u8()? != op::RESP_POSTINGS {
        return Err(BoardError::Protocol("expected postings response".into()));
    }
    let count = cur.u32()? as usize;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        out.push(decode_posting(&mut cur)?);
    }
    Ok(out)
}

impl<M: WireMessage + Clone + Send + Sync> BoardTransport<M> for TcpTransport<M> {
    fn post_batch(&self, records: Vec<PostRecord<M>>) -> Result<(), BoardError> {
        self.post_stream(&mut records.into_iter()).map(|_| ())
    }

    fn post_stream(
        &self,
        records: &mut dyn Iterator<Item = PostRecord<M>>,
    ) -> Result<u64, BoardError> {
        // Stream-encode straight into the frame body; the record count
        // prefix (bytes 1..5) is patched once the stream is drained.
        let mut body = vec![op::POST_BATCH, 0, 0, 0, 0];
        let mut payload = Vec::new();
        let mut count: u32 = 0;
        for r in records {
            put_str(&mut body, &r.from.committee);
            put_u64(&mut body, r.from.index as u64);
            put_str(&mut body, &r.phase);
            put_u64(&mut body, r.elements);
            put_u64(&mut body, r.bytes);
            payload.clear();
            r.message.encode(&mut payload);
            put_bytes(&mut body, &payload);
            count += 1;
        }
        body[1..5].copy_from_slice(&count.to_le_bytes());
        let resp = self.call(&body, false)?;
        if resp.first() != Some(&op::RESP_OK) {
            return Err(BoardError::Protocol("expected ok response to post".into()));
        }
        Ok(u64::from(count))
    }

    fn advance_round(&self) -> Result<u64, BoardError> {
        expect_value(&self.call(&[op::ADVANCE_ROUND], false)?)
    }

    fn round(&self) -> Result<u64, BoardError> {
        expect_value(&self.call(&[op::GET_ROUND], true)?)
    }

    fn len(&self) -> Result<usize, BoardError> {
        Ok(expect_value(&self.call(&[op::GET_LEN], true)?)? as usize)
    }

    fn read_round(&self, round: u64) -> Result<Vec<Posting<M>>, BoardError> {
        let mut body = vec![op::READ_ROUND];
        put_u64(&mut body, round);
        expect_postings(&self.call(&body, true)?)
    }

    fn read_from(&self, cursor: usize) -> Result<Vec<Posting<M>>, BoardError> {
        let mut body = vec![op::READ_FROM];
        put_u64(&mut body, cursor as u64);
        expect_postings(&self.call(&body, true)?)
    }

    fn backend_name(&self) -> &'static str {
        "loopback-tcp"
    }
}

impl<M> TcpTransport<M> {
    /// Asks the server to shut down (used by tests and single-owner
    /// deployments; multi-client deployments usually just kill the
    /// server process).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures reaching the server.
    pub fn shutdown_server(&self) -> Result<(), BoardError> {
        let resp = self.call(&[op::SHUTDOWN], false)?;
        if resp.first() != Some(&op::RESP_OK) {
            return Err(BoardError::Protocol("expected ok response to shutdown".into()));
        }
        Ok(())
    }
}

/// Spawns a board server on an ephemeral loopback port and connects a
/// board to it: the TCP stack exercised end-to-end inside one process
/// (tests, benches), no free port or second process required.
///
/// # Errors
///
/// Returns [`BoardError::Io`] if binding or connecting fails.
pub fn loopback<M: WireMessage + Clone + Send + Sync + 'static>(
) -> Result<(ServerHandle, crate::BulletinBoard<M>), BoardError> {
    let server = BoardServer::bind(SocketAddr::from(([127, 0, 0, 1], 0)))?;
    let handle = server.spawn()?;
    let board = crate::BulletinBoard::connect_tcp(handle.addr())?;
    Ok((handle, board))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_post_and_read_roundtrip() {
        let (mut handle, board) = loopback::<String>().unwrap();
        board.post(RoleId::new("c1", 0), "hello".into(), "offline", 2, 16).unwrap();
        board.advance_round().unwrap();
        board
            .post_batch(RoleId::new("c1", 1), "online", &["a".to_string(), "b".to_string()], 1, 8)
            .unwrap();
        assert_eq!(board.len().unwrap(), 3);
        assert_eq!(board.round().unwrap(), 1);
        let r0 = board.postings_in_round(0).unwrap();
        assert_eq!(r0.len(), 1);
        assert_eq!(r0[0].message, "hello");
        assert_eq!(r0[0].elements, 2);
        assert_eq!(&*r0[0].phase, "offline");
        let r1 = board.postings_in_round(1).unwrap();
        assert_eq!(r1.len(), 2);
        assert_eq!(r1[1].message, "b");
        assert_eq!(r1[1].from, RoleId::new("c1", 1));
        handle.shutdown();
    }

    #[test]
    fn loopback_cursor_and_meter_rebuild() {
        let (mut handle, board) = loopback::<u64>().unwrap();
        let mut cur = board.subscribe();
        let msgs: Vec<u64> = (0..10).collect();
        board.post_batch(RoleId::new("c", 0), "offline/x", &msgs, 3, 24).unwrap();
        let batch = cur.poll().unwrap();
        assert_eq!(batch.len(), 10);
        // A remote auditor rebuilds the meter from posting metadata.
        let total: u64 = batch.iter().map(|p| p.elements).sum();
        assert_eq!(total, 30);
        assert_eq!(board.meter().phase("offline/x").elements, 30);
        assert!(cur.poll().unwrap().is_empty());
        handle.shutdown();
    }

    #[test]
    fn two_clients_share_one_server() {
        let (mut handle, board_a) = loopback::<u64>().unwrap();
        let board_b: crate::BulletinBoard<u64> =
            crate::BulletinBoard::connect_tcp(handle.addr()).unwrap();
        board_a.post(RoleId::new("c", 0), 1, "x", 1, 8).unwrap();
        board_b.post(RoleId::new("c", 1), 2, "x", 1, 8).unwrap();
        // Both observe the same sequenced log.
        assert_eq!(board_a.len().unwrap(), 2);
        assert_eq!(board_b.len().unwrap(), 2);
        let log = board_b.postings().unwrap();
        assert_eq!(log[0].message, 1);
        assert_eq!(log[1].message, 2);
        handle.shutdown();
    }

    #[test]
    fn connect_to_dead_server_fails_after_retries() {
        let opts = TcpOptions {
            connect_attempts: 2,
            retry_delay: Duration::from_millis(5),
            ..TcpOptions::default()
        };
        // Bind-then-drop to get a port that is very likely unused.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let res = TcpTransport::<u64>::connect(addr, opts);
        assert!(matches!(res, Err(BoardError::Io(_))));
    }

    #[test]
    fn server_survives_client_disconnect() {
        let (mut handle, board) = loopback::<u64>().unwrap();
        board.post(RoleId::new("c", 0), 7, "x", 1, 8).unwrap();
        drop(board);
        let board2: crate::BulletinBoard<u64> =
            crate::BulletinBoard::connect_tcp(handle.addr()).unwrap();
        assert_eq!(board2.len().unwrap(), 1);
        handle.shutdown();
    }
}
