//! TCP bulletin-board backend: a length-prefix-framed client/server
//! pair so committee drivers and auditors run as separate OS
//! processes.
//!
//! # Wire protocol
//!
//! Every frame is `u32` little-endian length followed by that many
//! body bytes; the first body byte is an opcode. Requests:
//!
//! | op   | name          | body                                        |
//! |------|---------------|---------------------------------------------|
//! | 0x01 | `PostBatch`   | `u32` count, then per record: committee str, index `u64`, phase str, elements `u64`, bytes `u64`, payload bytes |
//! | 0x02 | `AdvanceRound`| —                                           |
//! | 0x03 | `GetRound`    | —                                           |
//! | 0x04 | `GetLen`      | —                                           |
//! | 0x05 | `ReadRound`   | round `u64`                                 |
//! | 0x06 | `ReadFrom`    | cursor `u64`                                |
//! | 0x07 | `Shutdown`    | —                                           |
//! | 0x08 | `PostPipe`    | same body as `PostBatch`; **no** per-frame ack |
//! | 0x09 | `PostSync`    | — (collects one coalesced ack for the run)  |
//! | 0x0A | `GetStats`    | —                                           |
//!
//! Responses: `0x80` ok, `0x81` value (`u64`), `0x82` postings
//! (`u32` count, then per posting: round `u64`, committee str, index
//! `u64`, phase str, elements `u64`, bytes `u64`, payload bytes),
//! `0x83` coalesced ack (`u64` frames acknowledged), `0x84` stats
//! (`u32` field count, then `u64` fields), `0xEE` error (str).
//! Strings and byte strings are `u32`-length prefixed.
//!
//! # Pipelined posting (v2)
//!
//! `PostBatch` is strict lockstep — one `RESP_OK` per frame, so every
//! frame pays a full round trip. The v2 extension removes that wait:
//! a client streams a **window** of `PostPipe` frames back-to-back
//! (coalesced into large socket writes) and then sends one `PostSync`,
//! which the server answers with `RESP_OK_N` carrying the count of
//! pipelined frames appended since the previous sync. The client
//! checks that count against what it sent, so a flush returns only
//! after every one of its frames is sequenced — pipelining changes
//! latency, never the ordering or durability contract. If a pipelined
//! frame fails, the server replies `RESP_ERR` naming the offending
//! frame's index within the unacknowledged run and **closes the
//! connection**, so no later buffered frame can append after a hole
//! (silent transcript divergence is impossible). Legacy lockstep
//! clients (and `pipeline_window: 1`) interoperate unchanged.
//!
//! # Sequencing = determinism
//!
//! The server appends each post frame **atomically** in frame-arrival
//! order, tagging records with the current round — the same
//! total-order contract as the in-process backend's single write lock.
//! Storage is a [`ShardedRoundLog`]: a small round-clock lock plus one
//! append lock per round, so concurrent worker connections contend
//! only when writing the same round, and history reads never block
//! writers. A driver posting from one logical thread (the engine's
//! coordinator, which already serializes the parallel workers' buffers
//! in item order) therefore produces a byte-identical posting log over
//! TCP and in-process; the transport-parity suite in `yoso-core`
//! asserts exactly that, in both lockstep and pipelined modes. Message
//! payloads cross the wire via the deterministic [`WireMessage`]
//! codec, never a `Debug` or serde format.
//!
//! A logical batch whose encoding exceeds [`TcpOptions::max_post_frame_bytes`]
//! is split client-side into several consecutive post frames sent
//! back-to-back on the one connection (the lock is held across all
//! chunks), so arbitrarily large buffer flushes stay under the
//! server's frame cap without reordering; each frame is still appended
//! atomically, but whole-batch atomicity is relaxed to per-frame for
//! oversized batches.
//!
//! The server stores payloads as opaque byte slices borrowed from a
//! per-frame arena (one copy of the frame body, shared by all of its
//! records), so one `board-server` binary serves any protocol with no
//! per-record payload allocation. Clients retry connects (the server
//! may still be starting) and idempotent reads; posts and round
//! advances are never retried blindly, so a hard failure surfaces as
//! [`BoardError::Io`] instead of a duplicated posting.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
// lint:allow(determinism): `Duration` is used only for socket
// timeouts and retry backoff — no wall-clock value is ever read or
// enters the posting log, so the transcript stays time-independent.
use std::time::Duration;

use parking_lot::Mutex;

use crate::board::Posting;
use crate::frame::{
    append_frame, flush_wire, io_err, op, read_frame_into, write_frame, FrameRead, FrameReader,
    MAX_FRAME,
};
use crate::role::RoleId;
use crate::transport::{
    put_bytes, put_str, put_u32, put_u64, BoardError, BoardTransport, PostRecord,
    ShardedRoundLog, WireCursor, WireMessage,
};

/// Outbound coalescing threshold for pipelined post frames: staged
/// frames are flushed to the socket once this many bytes accumulate
/// (or at a sync point), so many small frames share one `write`.
const WIRE_COALESCE_BYTES: usize = 128 * 1024;

/// One posting as the server stores it: all board metadata plus the
/// message payload as an opaque slice of the frame arena.
#[derive(Debug, Clone)]
struct RawPosting {
    round: u64,
    committee: Arc<str>,
    index: u64,
    phase: Arc<str>,
    elements: u64,
    bytes: u64,
    payload: PayloadSlice,
}

/// A payload borrowed from a frame arena: the whole post frame's body
/// is copied **once** into a shared `Arc<[u8]>` and every record's
/// payload is an offset/length view into it — no per-record copy.
#[derive(Debug, Clone)]
struct PayloadSlice {
    arena: Arc<[u8]>,
    off: u32,
    len: u32,
}

impl PayloadSlice {
    fn as_slice(&self) -> &[u8] {
        &self.arena[self.off as usize..(self.off + self.len) as usize]
    }
}

fn encode_raw_posting(out: &mut Vec<u8>, p: &RawPosting) -> Result<(), BoardError> {
    put_u64(out, p.round);
    put_str(out, &p.committee)?;
    put_u64(out, p.index);
    put_str(out, &p.phase)?;
    put_u64(out, p.elements);
    put_u64(out, p.bytes);
    put_bytes(out, p.payload.as_slice())
}

/// Rebuilds a `RESP_ERR` body carrying `msg` in a reusable buffer.
fn write_err(out: &mut Vec<u8>, msg: &str) {
    out.clear();
    out.push(op::RESP_ERR);
    if put_str(out, msg).is_err() {
        // An error string over u32::MAX bytes cannot occur in practice;
        // keep the frame well-formed if it somehow does.
        out.truncate(1);
        let _ = put_str(out, "error message too large");
    }
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

/// A per-connection cache of committee/phase labels: post frames
/// repeat a handful of labels thousands of times, so interning turns
/// per-record string allocation into a refcount bump. Most-recently
/// used first; bounded so a hostile client cannot grow it unboundedly.
#[derive(Debug, Default)]
struct Interner {
    cache: Vec<Arc<str>>,
}

impl Interner {
    const CAP: usize = 64;

    fn intern(&mut self, s: &str) -> Arc<str> {
        if let Some(i) = self.cache.iter().position(|a| &**a == s) {
            if i != 0 {
                self.cache.swap(0, i);
            }
            return Arc::clone(&self.cache[0]);
        }
        let a: Arc<str> = Arc::from(s);
        if self.cache.len() >= Self::CAP {
            self.cache.pop();
        }
        self.cache.insert(0, Arc::clone(&a));
        a
    }
}

/// Decoded-but-not-yet-appended record of a post frame: label `Arc`s
/// plus the payload's offsets into the frame body. Kept in a reusable
/// per-connection scratch so validation allocates nothing per frame.
#[derive(Debug)]
struct RecHeader {
    committee: Arc<str>,
    index: u64,
    phase: Arc<str>,
    elements: u64,
    bytes: u64,
    off: u32,
    len: u32,
}

/// Per-connection server state: the reusable response buffer, the
/// pipelined-frame ack counter, label interners and the record
/// scratch. Nothing here is shared — each connection handler owns one.
#[derive(Debug, Default)]
struct Conn {
    resp: Vec<u8>,
    /// `PostPipe` frames appended since the last `PostSync`.
    pending: u64,
    committees: Interner,
    phases: Interner,
    recs: Vec<RecHeader>,
}

/// What the connection loop should do with the dispatch result.
enum Action {
    /// Send `conn.resp` and keep serving.
    Reply,
    /// Nothing to send (a pipelined post frame).
    NoReply,
    /// Send `conn.resp`, then close the connection.
    ReplyClose,
    /// Send `conn.resp`, then set the shutdown flag (the ack must be
    /// on the wire before the accept loop starts tearing sockets down).
    ReplyShutdown,
}

/// Server wire/throughput counters, served by `GetStats`.
#[derive(Debug, Default)]
struct ServerStats {
    frames: AtomicU64,
    post_frames: AtomicU64,
    postings: AtomicU64,
    payload_bytes: AtomicU64,
    sync_acks: AtomicU64,
    acked_frames: AtomicU64,
    max_window: AtomicU64,
    reads: AtomicU64,
}

impl ServerStats {
    fn note_window(&self, pending: u64) {
        self.max_window.fetch_max(pending, Ordering::Relaxed);
    }
}

/// A snapshot of the server's wire counters (`GetStats`), decoded
/// client-side. All counters are since server start.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerWireStats {
    /// Request frames received, all opcodes.
    pub frames: u64,
    /// Post frames received (`PostBatch` + `PostPipe`).
    pub post_frames: u64,
    /// Posting records appended.
    pub postings: u64,
    /// Payload bytes appended (message encodings only, not headers).
    pub payload_bytes: u64,
    /// `PostSync` round trips answered (coalesced acks sent).
    pub sync_acks: u64,
    /// Pipelined frames acknowledged through coalesced acks.
    pub acked_frames: u64,
    /// Largest run of unacknowledged pipelined frames any connection
    /// reached (the effective client window).
    pub max_window: u64,
    /// Posting reads served (`ReadRound` + `ReadFrom`).
    pub reads: u64,
}

/// State shared between the accept loop and connection handlers.
#[derive(Debug, Default)]
struct ServerShared {
    log: ShardedRoundLog<RawPosting>,
    shutdown: AtomicBool,
    /// Registered connections (clone of each accepted stream), used to
    /// wake handlers parked in blocking reads when the server stops.
    conns: Mutex<Vec<(u64, TcpStream)>>,
    next_conn: AtomicU64,
    stats: ServerStats,
}

impl ServerShared {
    /// Handles one decoded request body. The response (if any) is left
    /// in `conn.resp`; the returned [`Action`] tells the connection
    /// loop whether to send it and whether to keep the connection.
    fn dispatch(&self, conn: &mut Conn, body: &[u8]) -> Action {
        self.stats.frames.fetch_add(1, Ordering::Relaxed);
        let Some(&opcode) = body.first() else {
            write_err(&mut conn.resp, "empty request frame");
            return Action::ReplyClose;
        };
        // A run of unacknowledged pipelined frames may only continue or
        // sync: anything else indicates a desynced client, and serving
        // it could interleave reads with half-acknowledged appends.
        if conn.pending > 0 && !matches!(opcode, op::POST_PIPE | op::POST_SYNC) {
            write_err(
                &mut conn.resp,
                &format!(
                    "request opcode {opcode:#x} while {} pipelined frames are unacknowledged",
                    conn.pending
                ),
            );
            return Action::ReplyClose;
        }
        match opcode {
            op::POST_BATCH => match self.append_post_frame(conn, body) {
                Ok(()) => {
                    conn.resp.clear();
                    conn.resp.push(op::RESP_OK);
                    Action::Reply
                }
                // Decode errors leave the log untouched and the frame
                // stream intact: lockstep clients get the error as the
                // frame's (only) response and may keep the connection.
                Err(e) => {
                    write_err(&mut conn.resp, &e.to_string());
                    Action::Reply
                }
            },
            op::POST_PIPE => match self.append_post_frame(conn, body) {
                Ok(()) => {
                    conn.pending += 1;
                    self.stats.note_window(conn.pending);
                    Action::NoReply
                }
                // Name the offending frame's index within the unacked
                // run, then close: later frames are already buffered on
                // the socket, and appending any of them after a failed
                // frame would silently fork the transcript.
                Err(e) => {
                    write_err(
                        &mut conn.resp,
                        &format!("pipelined frame {} rejected: {e}", conn.pending),
                    );
                    Action::ReplyClose
                }
            },
            op::POST_SYNC => {
                let acked = conn.pending;
                conn.pending = 0;
                self.stats.sync_acks.fetch_add(1, Ordering::Relaxed);
                self.stats.acked_frames.fetch_add(acked, Ordering::Relaxed);
                conn.resp.clear();
                conn.resp.push(op::RESP_OK_N);
                put_u64(&mut conn.resp, acked);
                Action::Reply
            }
            op::ADVANCE_ROUND => self.value_reply(conn, self.log.advance()),
            op::GET_ROUND => self.value_reply(conn, self.log.round()),
            op::GET_LEN => self.value_reply(conn, self.log.len() as u64),
            op::READ_ROUND => {
                self.stats.reads.fetch_add(1, Ordering::Relaxed);
                match self.encode_round(conn, body) {
                    Ok(()) => Action::Reply,
                    Err(e) => {
                        write_err(&mut conn.resp, &e.to_string());
                        Action::Reply
                    }
                }
            }
            op::READ_FROM => {
                self.stats.reads.fetch_add(1, Ordering::Relaxed);
                match self.encode_from(conn, body) {
                    Ok(()) => Action::Reply,
                    Err(e) => {
                        write_err(&mut conn.resp, &e.to_string());
                        Action::Reply
                    }
                }
            }
            op::GET_STATS => {
                let s = &self.stats;
                let fields = [
                    s.frames.load(Ordering::Relaxed),
                    s.post_frames.load(Ordering::Relaxed),
                    s.postings.load(Ordering::Relaxed),
                    s.payload_bytes.load(Ordering::Relaxed),
                    s.sync_acks.load(Ordering::Relaxed),
                    s.acked_frames.load(Ordering::Relaxed),
                    s.max_window.load(Ordering::Relaxed),
                    s.reads.load(Ordering::Relaxed),
                ];
                conn.resp.clear();
                conn.resp.push(op::RESP_STATS);
                put_u32(&mut conn.resp, fields.len() as u32);
                for f in fields {
                    put_u64(&mut conn.resp, f);
                }
                Action::Reply
            }
            op::SHUTDOWN => {
                conn.resp.clear();
                conn.resp.push(op::RESP_OK);
                Action::ReplyShutdown
            }
            other => {
                write_err(&mut conn.resp, &format!("unknown opcode {other:#x}"));
                Action::Reply
            }
        }
    }

    fn value_reply(&self, conn: &mut Conn, v: u64) -> Action {
        conn.resp.clear();
        conn.resp.push(op::RESP_VALUE);
        put_u64(&mut conn.resp, v);
        Action::Reply
    }

    /// Validates and appends one post frame (`PostBatch` or
    /// `PostPipe`). The whole frame is decoded into the connection's
    /// scratch **before** the log is touched — a malformed record
    /// rejects the frame without appending a prefix of it — then the
    /// frame body is copied once into a shared arena and all records
    /// are appended atomically, their payloads borrowing from it.
    fn append_post_frame(&self, conn: &mut Conn, body: &[u8]) -> Result<(), BoardError> {
        let mut cur = WireCursor::new(body);
        let _opcode = cur.u8()?;
        let count = cur.u32()? as usize;
        let recs = &mut conn.recs;
        recs.clear();
        recs.reserve(count);
        let mut payload_bytes = 0u64;
        for _ in 0..count {
            let committee = conn.committees.intern(cur.str()?);
            let index = cur.u64()?;
            let phase = conn.phases.intern(cur.str()?);
            let elements = cur.u64()?;
            let bytes = cur.u64()?;
            let payload = cur.bytes()?;
            payload_bytes += payload.len() as u64;
            let off = (cur.position() - payload.len()) as u32;
            recs.push(RecHeader {
                committee,
                index,
                phase,
                elements,
                bytes,
                off,
                len: payload.len() as u32,
            });
        }
        if !recs.is_empty() {
            let arena: Arc<[u8]> = Arc::from(body);
            self.log.append_with(|round, out| {
                out.reserve(recs.len());
                for r in recs.drain(..) {
                    out.push(RawPosting {
                        round,
                        committee: r.committee,
                        index: r.index,
                        phase: r.phase,
                        elements: r.elements,
                        bytes: r.bytes,
                        payload: PayloadSlice {
                            arena: Arc::clone(&arena),
                            off: r.off,
                            len: r.len,
                        },
                    });
                }
            });
        }
        self.stats.post_frames.fetch_add(1, Ordering::Relaxed);
        self.stats.postings.fetch_add(count as u64, Ordering::Relaxed);
        self.stats.payload_bytes.fetch_add(payload_bytes, Ordering::Relaxed);
        Ok(())
    }

    fn encode_round(&self, conn: &mut Conn, body: &[u8]) -> Result<(), BoardError> {
        let mut cur = WireCursor::new(body);
        let _opcode = cur.u8()?;
        let round = cur.u64()?;
        let resp = &mut conn.resp;
        resp.clear();
        resp.push(op::RESP_POSTINGS);
        self.log.with_round(round, |ps| {
            let count = u32::try_from(ps.len()).map_err(|_| {
                BoardError::Protocol(format!(
                    "{} postings exceed the u32 count prefix",
                    ps.len()
                ))
            })?;
            put_u32(resp, count);
            for p in ps {
                encode_raw_posting(resp, p)?;
            }
            Ok(())
        })
    }

    fn encode_from(&self, conn: &mut Conn, body: &[u8]) -> Result<(), BoardError> {
        let mut cur = WireCursor::new(body);
        let _opcode = cur.u8()?;
        let cursor = cur.u64()? as usize;
        let resp = &mut conn.resp;
        resp.clear();
        resp.push(op::RESP_POSTINGS);
        put_u32(resp, 0); // patched below
        let mut n: u64 = 0;
        self.log.try_for_each_from(cursor, &mut |p| {
            n += 1;
            encode_raw_posting(resp, p)
        })?;
        let count = u32::try_from(n).map_err(|_| {
            BoardError::Protocol(format!("{n} postings exceed the u32 count prefix"))
        })?;
        resp[1..5].copy_from_slice(&count.to_le_bytes());
        Ok(())
    }
}

fn handle_connection(shared: &ServerShared, mut stream: TcpStream, conn_id: u64) {
    let _ = stream.set_nodelay(true);
    // The reader owns the socket's read-timeout policy: short idle
    // polls right after traffic (fast shutdown notice), escalating to
    // the ~200ms cap, then a parked blocking read — an idle fleet
    // burns no wakeups, and the accept loop wakes parked handlers via
    // the connection registry when the server stops.
    let mut reader = FrameReader::new();
    let mut conn = Conn::default();
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match reader.next_frame(&mut stream) {
            Ok(FrameRead::Frame(body)) => match shared.dispatch(&mut conn, body) {
                Action::Reply => {
                    if write_frame(&mut stream, &conn.resp).is_err() {
                        break;
                    }
                }
                Action::NoReply => {}
                Action::ReplyClose => {
                    let _ = write_frame(&mut stream, &conn.resp);
                    break;
                }
                Action::ReplyShutdown => {
                    // Ack first, then raise the flag: the accept loop
                    // tears sockets down once it sees the flag, and the
                    // requester must get its ok before that.
                    let _ = write_frame(&mut stream, &conn.resp);
                    shared.shutdown.store(true, Ordering::SeqCst);
                    break;
                }
            },
            Ok(FrameRead::Idle) => continue, // re-check the shutdown flag
            Ok(FrameRead::Closed) => break,  // clean disconnect
            Err(e) => {
                // Framing violation or hard I/O error: the stream
                // position is no longer trustworthy, so the connection
                // must close — but name the cause first, so the
                // client's non-retried post surfaces the violation
                // instead of a generic "server closed the connection".
                write_err(&mut conn.resp, &e.to_string());
                let _ = write_frame(&mut stream, &conn.resp);
                break;
            }
        }
    }
    shared.conns.lock().retain(|(id, _)| *id != conn_id);
}

/// A board server bound to a TCP address, serving any number of
/// clients until shut down (via the wire opcode or [`ServerHandle`]).
#[derive(Debug)]
pub struct BoardServer {
    listener: TcpListener,
    shared: Arc<ServerShared>,
}

impl BoardServer {
    /// Binds the server socket (not yet accepting).
    ///
    /// # Errors
    ///
    /// Returns [`BoardError::Io`] if binding fails.
    pub fn bind(addr: SocketAddr) -> Result<Self, BoardError> {
        let listener = TcpListener::bind(addr).map_err(|e| io_err("bind", &e))?;
        listener.set_nonblocking(true).map_err(|e| io_err("set_nonblocking", &e))?;
        Ok(BoardServer { listener, shared: Arc::new(ServerShared::default()) })
    }

    /// The bound address (with the OS-assigned port when bound to `:0`).
    ///
    /// # Errors
    ///
    /// Returns [`BoardError::Io`] if the socket has no local address.
    pub fn local_addr(&self) -> Result<SocketAddr, BoardError> {
        self.listener.local_addr().map_err(|e| io_err("local_addr", &e))
    }

    /// Serves connections on the calling thread until a `Shutdown`
    /// frame arrives (or the process is killed).
    pub fn serve(self) {
        accept_loop(&self.listener, &self.shared);
    }

    /// Serves connections on a background thread; the returned handle
    /// stops the server when shut down or dropped.
    pub fn spawn(self) -> Result<ServerHandle, BoardError> {
        let addr = self.local_addr()?;
        let shared = Arc::clone(&self.shared);
        let thread = std::thread::Builder::new()
            .name("board-server".into())
            .spawn(move || self.serve())
            .map_err(|e| io_err("spawn server thread", &e))?;
        Ok(ServerHandle { addr, shared, thread: Some(thread) })
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<ServerShared>) {
    let mut idle_sleep = Duration::from_millis(1);
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                idle_sleep = Duration::from_millis(1);
                let conn_id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
                if let Ok(clone) = stream.try_clone() {
                    shared.conns.lock().push((conn_id, clone));
                }
                let shared = Arc::clone(shared);
                let _ = std::thread::Builder::new()
                    .name("board-conn".into())
                    .spawn(move || handle_connection(&shared, stream, conn_id));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(idle_sleep);
                idle_sleep = (idle_sleep * 2).min(Duration::from_millis(64));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(1)),
        }
    }
    // Wake every parked connection handler: their blocking reads
    // return immediately once the socket is shut down, they observe
    // the flag and exit. Without this an idle connection could sit in
    // a parked read forever.
    for (_, s) in shared.conns.lock().iter() {
        let _ = s.shutdown(std::net::Shutdown::Both);
    }
}

/// Handle to a background [`BoardServer`]; shuts the server down when
/// dropped.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<ServerShared>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The server's listening address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the server thread. Connection
    /// handlers are woken from parked reads via the connection
    /// registry; polling handlers notice the flag within their tick.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// Client-side knobs: connect retry budget, I/O timeouts, frame
/// chunking and the pipelining window.
#[derive(Debug, Clone, Copy)]
pub struct TcpOptions {
    /// Connection attempts before giving up (the server may still be
    /// starting when the committee process launches).
    pub connect_attempts: u32,
    /// Delay between connection attempts.
    pub retry_delay: Duration,
    /// Read/write timeout on the established stream.
    pub io_timeout: Duration,
    /// Extra attempts (with reconnect) for idempotent reads. Posts and
    /// round advances are never retried: a retry after a partially
    /// processed frame could duplicate a posting.
    pub read_retries: u32,
    /// Soft cap on one post frame body. A logical batch larger than
    /// this (a full parallel buffer flush can exceed the server's
    /// 64MB frame cap) is split into multiple frames, sent back-to-back
    /// on the single connection — see [`TcpTransport::post_stream`] for
    /// the atomicity contract. Clamped to the 64MiB frame cap.
    pub max_post_frame_bytes: usize,
    /// Post frames kept in flight between `PostSync` barriers. `1` (or
    /// `0`) selects strict lockstep posting — one `PostBatch` frame,
    /// one `RESP_OK`, one round trip each; larger windows stream that
    /// many `PostPipe` frames before blocking on one coalesced ack.
    /// Either way a flush returns only after the server has sequenced
    /// every frame of it.
    pub pipeline_window: usize,
}

impl Default for TcpOptions {
    fn default() -> Self {
        TcpOptions {
            connect_attempts: 50,
            retry_delay: Duration::from_millis(40),
            io_timeout: Duration::from_secs(10),
            read_retries: 3,
            max_post_frame_bytes: MAX_FRAME / 2,
            pipeline_window: 32,
        }
    }
}

/// Client-side wire counters (per transport).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Post frames sent (`PostBatch` + `PostPipe`), i.e. how many
    /// chunks flushes were split into.
    pub post_frames: u64,
    /// `PostSync` round trips awaited (pipelined mode only).
    pub sync_round_trips: u64,
}

/// Reusable per-connection client buffers, all living under the one
/// connection lock: the steady state of a posting loop allocates
/// nothing.
#[derive(Debug, Default)]
struct ClientConn {
    stream: Option<TcpStream>,
    /// Outbound coalescing buffer for pipelined frames.
    wire: Vec<u8>,
    /// The post frame body under construction.
    body: Vec<u8>,
    /// One record's encoding (header + payload).
    record: Vec<u8>,
    /// One message's payload encoding.
    payload: Vec<u8>,
    /// The last response frame body.
    resp: Vec<u8>,
}

/// A [`BoardTransport`] over one TCP connection to a `board-server`.
///
/// All requests are serialized on the single connection (one mutex),
/// which is exactly the ordering the determinism argument needs: the
/// posting order the server sees is the order this process issued.
#[derive(Debug)]
pub struct TcpTransport<M> {
    addr: SocketAddr,
    /// Backend label: `"loopback-tcp"` when `addr` is a loopback
    /// address, `"tcp"` for a genuinely remote server — diagnostics and
    /// bench tables should name the actual deployment shape.
    label: &'static str,
    opts: TcpOptions,
    conn: Mutex<ClientConn>,
    sent_post_frames: AtomicU64,
    sent_syncs: AtomicU64,
    _marker: std::marker::PhantomData<fn() -> M>,
}

impl<M> TcpTransport<M> {
    /// Connects to `addr`, retrying per `opts` while the server comes
    /// up.
    ///
    /// # Errors
    ///
    /// Returns [`BoardError::Io`] if every attempt fails.
    pub fn connect(addr: SocketAddr, opts: TcpOptions) -> Result<Self, BoardError> {
        let stream = connect_with_retry(addr, &opts)?;
        let label = if addr.ip().is_loopback() { "loopback-tcp" } else { "tcp" };
        Ok(TcpTransport {
            addr,
            label,
            opts,
            conn: Mutex::new(ClientConn { stream: Some(stream), ..ClientConn::default() }),
            sent_post_frames: AtomicU64::new(0),
            sent_syncs: AtomicU64::new(0),
            _marker: std::marker::PhantomData,
        })
    }

    /// The server address this transport talks to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The options this transport was connected with.
    pub fn options(&self) -> &TcpOptions {
        &self.opts
    }

    /// Snapshot of this transport's wire counters.
    pub fn wire_stats(&self) -> WireStats {
        WireStats {
            post_frames: self.sent_post_frames.load(Ordering::Relaxed),
            sync_round_trips: self.sent_syncs.load(Ordering::Relaxed),
        }
    }

    /// Fetches the server's wire/throughput counters (`GetStats`).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures reaching the server.
    pub fn server_stats(&self) -> Result<ServerWireStats, BoardError> {
        let mut g = self.conn.lock();
        let c = &mut *g;
        request(self.addr, &self.opts, &mut c.stream, &mut c.resp, &[op::GET_STATS], true)?;
        expect_stats(&c.resp)
    }

    /// Asks the server to shut down (used by tests and single-owner
    /// deployments; multi-client deployments usually just kill the
    /// server process).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures reaching the server.
    pub fn shutdown_server(&self) -> Result<(), BoardError> {
        let mut g = self.conn.lock();
        let c = &mut *g;
        request(self.addr, &self.opts, &mut c.stream, &mut c.resp, &[op::SHUTDOWN], false)?;
        if c.resp.first() != Some(&op::RESP_OK) {
            return Err(BoardError::Protocol("expected ok response to shutdown".into()));
        }
        Ok(())
    }
}

fn connect_with_retry(addr: SocketAddr, opts: &TcpOptions) -> Result<TcpStream, BoardError> {
    let mut last = None;
    for attempt in 0..opts.connect_attempts.max(1) {
        if attempt > 0 {
            std::thread::sleep(opts.retry_delay);
        }
        match TcpStream::connect_timeout(&addr, opts.io_timeout) {
            Ok(stream) => {
                let _ = stream.set_nodelay(true);
                let _ = stream.set_read_timeout(Some(opts.io_timeout));
                let _ = stream.set_write_timeout(Some(opts.io_timeout));
                return Ok(stream);
            }
            Err(e) => last = Some(e),
        }
    }
    Err(BoardError::Io(format!(
        "could not connect to board server at {addr} after {} attempts: {}",
        opts.connect_attempts.max(1),
        last.map(|e| e.to_string()).unwrap_or_else(|| "no error".into())
    )))
}

/// Sends `body` and reads the response into `resp`. `idempotent`
/// requests are retried with a fresh connection on I/O failure; posts
/// and round advances are not (a blind retry could double-append).
fn request(
    addr: SocketAddr,
    opts: &TcpOptions,
    slot: &mut Option<TcpStream>,
    resp: &mut Vec<u8>,
    body: &[u8],
    idempotent: bool,
) -> Result<(), BoardError> {
    let attempts = 1 + if idempotent { opts.read_retries } else { 0 };
    let mut last_err = BoardError::Io("no attempt made".into());
    for attempt in 0..attempts {
        if attempt > 0 {
            std::thread::sleep(opts.retry_delay);
        }
        if slot.is_none() {
            match connect_with_retry(addr, opts) {
                Ok(s) => *slot = Some(s),
                Err(e) => {
                    last_err = e;
                    continue;
                }
            }
        }
        let Some(stream) = slot.as_mut() else { continue };
        let result = write_frame(stream, body).and_then(|()| read_frame_into(stream, resp));
        match result {
            Ok(true) => return check_response(resp),
            Ok(false) => {
                last_err = BoardError::Io("server closed the connection".into());
                *slot = None;
            }
            Err(e) => {
                last_err = e;
                *slot = None;
            }
        }
    }
    Err(last_err)
}

/// Surfaces server-side errors carried in a response body as
/// [`BoardError::Protocol`].
fn check_response(resp: &[u8]) -> Result<(), BoardError> {
    match resp.first() {
        None => Err(BoardError::Protocol("empty response frame".into())),
        Some(&op::RESP_ERR) => {
            let mut cur = WireCursor::new(&resp[1..]);
            Err(BoardError::Protocol(format!("server error: {}", cur.str()?)))
        }
        Some(_) => Ok(()),
    }
}

fn expect_value(resp: &[u8]) -> Result<u64, BoardError> {
    let mut cur = WireCursor::new(resp);
    if cur.u8()? != op::RESP_VALUE {
        return Err(BoardError::Protocol("expected value response".into()));
    }
    cur.u64()
}

fn expect_stats(resp: &[u8]) -> Result<ServerWireStats, BoardError> {
    let mut cur = WireCursor::new(resp);
    if cur.u8()? != op::RESP_STATS {
        return Err(BoardError::Protocol("expected stats response".into()));
    }
    let count = cur.u32()? as usize;
    let mut fields = [0u64; 8];
    for i in 0..count {
        let v = cur.u64()?;
        if let Some(slot) = fields.get_mut(i) {
            *slot = v; // unknown trailing fields from newer servers are ignored
        }
    }
    Ok(ServerWireStats {
        frames: fields[0],
        post_frames: fields[1],
        postings: fields[2],
        payload_bytes: fields[3],
        sync_acks: fields[4],
        acked_frames: fields[5],
        max_window: fields[6],
        reads: fields[7],
    })
}

fn expect_postings<M: WireMessage>(resp: &[u8]) -> Result<Vec<Posting<M>>, BoardError> {
    let mut cur = WireCursor::new(resp);
    if cur.u8()? != op::RESP_POSTINGS {
        return Err(BoardError::Protocol("expected postings response".into()));
    }
    let count = cur.u32()? as usize;
    let mut out = Vec::with_capacity(count);
    // Consecutive postings overwhelmingly repeat the same committee
    // and phase labels; reuse the previous `Arc` instead of allocating
    // a fresh string per posting.
    let mut last_committee: Option<Arc<str>> = None;
    let mut last_phase: Option<Arc<str>> = None;
    for _ in 0..count {
        let round = cur.u64()?;
        let committee = intern_cached(&mut last_committee, cur.str()?);
        let index = cur.u64()? as usize;
        let phase = intern_cached(&mut last_phase, cur.str()?);
        let elements = cur.u64()?;
        let bytes = cur.u64()?;
        let payload = cur.bytes()?;
        let mut pc = WireCursor::new(payload);
        let message = M::decode(&mut pc)?;
        out.push(Posting { round, from: RoleId { committee, index }, phase, message, elements, bytes });
    }
    Ok(out)
}

fn intern_cached(last: &mut Option<Arc<str>>, s: &str) -> Arc<str> {
    match last {
        Some(a) if &**a == s => Arc::clone(a),
        _ => {
            let a: Arc<str> = Arc::from(s);
            *last = Some(Arc::clone(&a));
            a
        }
    }
}

/// Encodes one record (header + payload) into `record`, using
/// `payload` as the message-encoding scratch.
fn encode_record<M: WireMessage>(
    record: &mut Vec<u8>,
    payload: &mut Vec<u8>,
    r: &PostRecord<M>,
) -> Result<(), BoardError> {
    record.clear();
    put_str(record, &r.from.committee)?;
    put_u64(record, r.from.index as u64);
    put_str(record, &r.phase)?;
    put_u64(record, r.elements);
    put_u64(record, r.bytes);
    payload.clear();
    r.message.encode(payload)?;
    put_bytes(record, payload)
}

fn oversized_record_err(encoded: usize) -> BoardError {
    BoardError::Protocol(format!(
        "single posting of {encoded} encoded bytes exceeds the {MAX_FRAME}-byte frame cap"
    ))
}

/// Sends one lockstep `PostBatch` frame holding `count` records:
/// patches the count prefix, waits for the per-frame `RESP_OK`, and
/// resets `body` to an empty header for the next chunk.
fn send_lockstep_frame(
    addr: SocketAddr,
    opts: &TcpOptions,
    slot: &mut Option<TcpStream>,
    resp: &mut Vec<u8>,
    body: &mut Vec<u8>,
    count: u32,
) -> Result<(), BoardError> {
    body[1..5].copy_from_slice(&count.to_le_bytes());
    request(addr, opts, slot, resp, body, false)?;
    if resp.first() != Some(&op::RESP_OK) {
        return Err(BoardError::Protocol("expected ok response to post".into()));
    }
    body.truncate(5);
    Ok(())
}

/// Stages one pipelined `PostPipe` frame into the outbound coalescing
/// buffer (flushing it to the socket past the coalescing threshold)
/// without waiting for any response.
fn stage_pipelined_frame(
    stream: &mut TcpStream,
    wire: &mut Vec<u8>,
    body: &mut Vec<u8>,
    count: u32,
) -> Result<(), BoardError> {
    body[1..5].copy_from_slice(&count.to_le_bytes());
    append_frame(wire, body)?;
    body.truncate(5);
    if wire.len() >= WIRE_COALESCE_BYTES {
        flush_wire(stream, wire)?;
    }
    Ok(())
}

/// Emits a `PostSync` barrier and blocks until the server's coalesced
/// ack arrives; `expected` is how many frames were staged since the
/// previous sync, and a mismatch (or a server `RESP_ERR` naming the
/// offending frame) fails the flush.
fn pipeline_sync(
    stream: &mut TcpStream,
    wire: &mut Vec<u8>,
    resp: &mut Vec<u8>,
    expected: u64,
) -> Result<(), BoardError> {
    append_frame(wire, &[op::POST_SYNC])?;
    flush_wire(stream, wire)?;
    if !read_frame_into(stream, resp)? {
        return Err(BoardError::Io(
            "server closed the connection during a pipelined flush".into(),
        ));
    }
    check_response(resp)?;
    let mut cur = WireCursor::new(resp);
    if cur.u8()? != op::RESP_OK_N {
        return Err(BoardError::Protocol("expected coalesced ack to post sync".into()));
    }
    let acked = cur.u64()?;
    if acked != expected {
        return Err(BoardError::Protocol(format!(
            "server acknowledged {acked} of {expected} pipelined frames"
        )));
    }
    Ok(())
}

/// After a failed pipelined write, the server has usually already sent
/// the `RESP_ERR` naming the offending frame (and closed the
/// connection, which is what broke the write). Drain it so the flush
/// fails with the named cause rather than a bare broken pipe.
fn surface_pipeline_error(stream: &mut TcpStream, resp: &mut Vec<u8>, orig: BoardError) -> BoardError {
    if matches!(orig, BoardError::Io(_)) {
        if let Ok(true) = read_frame_into(stream, resp) {
            if let Err(named) = check_response(resp) {
                return named;
            }
        }
    }
    orig
}

impl<M: WireMessage + Clone + Send + Sync> TcpTransport<M> {
    /// The strict lockstep flush: one `PostBatch` frame, one `RESP_OK`,
    /// one round trip per chunk.
    fn post_stream_lockstep(
        &self,
        c: &mut ClientConn,
        records: &mut dyn Iterator<Item = PostRecord<M>>,
    ) -> Result<u64, BoardError> {
        let chunk_cap = self.opts.max_post_frame_bytes.min(MAX_FRAME);
        c.body.clear();
        c.body.extend_from_slice(&[op::POST_BATCH, 0, 0, 0, 0]);
        let mut count: u32 = 0;
        let mut total: u64 = 0;
        for r in records {
            encode_record(&mut c.record, &mut c.payload, &r)?;
            if 5 + c.record.len() > MAX_FRAME {
                return Err(oversized_record_err(c.record.len()));
            }
            if count > 0 && c.body.len() + c.record.len() > chunk_cap {
                send_lockstep_frame(
                    self.addr, &self.opts, &mut c.stream, &mut c.resp, &mut c.body, count,
                )?;
                self.sent_post_frames.fetch_add(1, Ordering::Relaxed);
                total += u64::from(count);
                count = 0;
            }
            c.body.extend_from_slice(&c.record);
            count += 1;
        }
        if count > 0 || total == 0 {
            send_lockstep_frame(
                self.addr, &self.opts, &mut c.stream, &mut c.resp, &mut c.body, count,
            )?;
            self.sent_post_frames.fetch_add(1, Ordering::Relaxed);
            total += u64::from(count);
        }
        Ok(total)
    }

    /// The pipelined flush: stream `PostPipe` frames, syncing every
    /// `pipeline_window` frames and once at the end, so the call
    /// returns only after the server sequenced everything — and any
    /// failure surfaces in **this** flush, never a later call.
    fn post_stream_pipelined(
        &self,
        c: &mut ClientConn,
        records: &mut dyn Iterator<Item = PostRecord<M>>,
    ) -> Result<u64, BoardError> {
        let mut stream = match c.stream.take() {
            Some(s) => s,
            None => connect_with_retry(self.addr, &self.opts)?,
        };
        let result = self.pipelined_flush(&mut stream, c, records);
        match result {
            Ok(total) => {
                c.stream = Some(stream);
                Ok(total)
            }
            // The connection is not reusable after a failed flush (the
            // server closes it on pipelined errors; on client-side
            // failures its position is unknown) — drop it so the next
            // operation reconnects.
            Err(e) => Err(surface_pipeline_error(&mut stream, &mut c.resp, e)),
        }
    }

    fn pipelined_flush(
        &self,
        stream: &mut TcpStream,
        c: &mut ClientConn,
        records: &mut dyn Iterator<Item = PostRecord<M>>,
    ) -> Result<u64, BoardError> {
        let chunk_cap = self.opts.max_post_frame_bytes.min(MAX_FRAME);
        let window = self.opts.pipeline_window as u64;
        c.body.clear();
        c.body.extend_from_slice(&[op::POST_PIPE, 0, 0, 0, 0]);
        c.wire.clear();
        let mut count: u32 = 0;
        let mut total: u64 = 0;
        let mut inflight: u64 = 0;
        for r in records {
            encode_record(&mut c.record, &mut c.payload, &r)?;
            if 5 + c.record.len() > MAX_FRAME {
                return Err(oversized_record_err(c.record.len()));
            }
            if count > 0 && c.body.len() + c.record.len() > chunk_cap {
                stage_pipelined_frame(stream, &mut c.wire, &mut c.body, count)?;
                self.sent_post_frames.fetch_add(1, Ordering::Relaxed);
                inflight += 1;
                total += u64::from(count);
                count = 0;
                if inflight >= window {
                    pipeline_sync(stream, &mut c.wire, &mut c.resp, inflight)?;
                    self.sent_syncs.fetch_add(1, Ordering::Relaxed);
                    inflight = 0;
                }
            }
            c.body.extend_from_slice(&c.record);
            count += 1;
        }
        if count > 0 {
            stage_pipelined_frame(stream, &mut c.wire, &mut c.body, count)?;
            self.sent_post_frames.fetch_add(1, Ordering::Relaxed);
            inflight += 1;
            total += u64::from(count);
        }
        // The terminal barrier: the flush's contract is "returned ⇒
        // sequenced", in lockstep and pipelined mode alike.
        pipeline_sync(stream, &mut c.wire, &mut c.resp, inflight)?;
        self.sent_syncs.fetch_add(1, Ordering::Relaxed);
        Ok(total)
    }
}

impl<M: WireMessage + Clone + Send + Sync> BoardTransport<M> for TcpTransport<M> {
    fn post_batch(&self, records: Vec<PostRecord<M>>) -> Result<(), BoardError> {
        self.post_stream(&mut records.into_iter()).map(|_| ())
    }

    fn post_stream(
        &self,
        records: &mut dyn Iterator<Item = PostRecord<M>>,
    ) -> Result<u64, BoardError> {
        // Stream-encode straight into the frame body; the record count
        // prefix (bytes 1..5) is patched when each frame is sent. A
        // batch whose encoding would exceed `max_post_frame_bytes` is
        // split across several frames (the server's 64MB frame cap
        // would otherwise reject a large parallel buffer flush). The
        // connection lock is held across all chunks, so the sub-batches
        // land contiguously in the server's arrival order; each frame
        // is appended atomically, and a failure between frames can
        // leave a prefix of the batch posted — the same
        // "no blind retry" contract as a single lost post.
        let mut guard = self.conn.lock();
        let c = &mut *guard;
        if self.opts.pipeline_window > 1 {
            self.post_stream_pipelined(c, records)
        } else {
            self.post_stream_lockstep(c, records)
        }
    }

    fn advance_round(&self) -> Result<u64, BoardError> {
        let mut g = self.conn.lock();
        let c = &mut *g;
        request(self.addr, &self.opts, &mut c.stream, &mut c.resp, &[op::ADVANCE_ROUND], false)?;
        expect_value(&c.resp)
    }

    fn round(&self) -> Result<u64, BoardError> {
        let mut g = self.conn.lock();
        let c = &mut *g;
        request(self.addr, &self.opts, &mut c.stream, &mut c.resp, &[op::GET_ROUND], true)?;
        expect_value(&c.resp)
    }

    fn len(&self) -> Result<usize, BoardError> {
        let mut g = self.conn.lock();
        let c = &mut *g;
        request(self.addr, &self.opts, &mut c.stream, &mut c.resp, &[op::GET_LEN], true)?;
        Ok(expect_value(&c.resp)? as usize)
    }

    fn read_round(&self, round: u64) -> Result<Vec<Posting<M>>, BoardError> {
        let mut body = vec![op::READ_ROUND];
        put_u64(&mut body, round);
        let mut g = self.conn.lock();
        let c = &mut *g;
        request(self.addr, &self.opts, &mut c.stream, &mut c.resp, &body, true)?;
        expect_postings(&c.resp)
    }

    fn read_from(&self, cursor: usize) -> Result<Vec<Posting<M>>, BoardError> {
        let mut body = vec![op::READ_FROM];
        put_u64(&mut body, cursor as u64);
        let mut g = self.conn.lock();
        let c = &mut *g;
        request(self.addr, &self.opts, &mut c.stream, &mut c.resp, &body, true)?;
        expect_postings(&c.resp)
    }

    fn backend_name(&self) -> &'static str {
        self.label
    }
}

/// Spawns a board server on an ephemeral loopback port and connects a
/// board to it: the TCP stack exercised end-to-end inside one process
/// (tests, benches), no free port or second process required.
///
/// # Errors
///
/// Returns [`BoardError::Io`] if binding or connecting fails.
pub fn loopback<M: WireMessage + Clone + Send + Sync + 'static>(
) -> Result<(ServerHandle, crate::BulletinBoard<M>), BoardError> {
    loopback_with(TcpOptions::default())
}

/// [`loopback`] with explicit client [`TcpOptions`] — the hook for
/// exercising lockstep (`pipeline_window: 1`) vs pipelined posting
/// against the same server implementation.
///
/// # Errors
///
/// Returns [`BoardError::Io`] if binding or connecting fails.
pub fn loopback_with<M: WireMessage + Clone + Send + Sync + 'static>(
    opts: TcpOptions,
) -> Result<(ServerHandle, crate::BulletinBoard<M>), BoardError> {
    let server = BoardServer::bind(SocketAddr::from(([127, 0, 0, 1], 0)))?;
    let handle = server.spawn()?;
    let board = crate::BulletinBoard::connect_tcp_with(handle.addr(), opts)?;
    Ok((handle, board))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    #[test]
    fn loopback_post_and_read_roundtrip() {
        let (mut handle, board) = loopback::<String>().unwrap();
        board.post(RoleId::new("c1", 0), "hello".into(), "offline", 2, 16).unwrap();
        board.advance_round().unwrap();
        board
            .post_batch(RoleId::new("c1", 1), "online", &["a".to_string(), "b".to_string()], 1, 8)
            .unwrap();
        assert_eq!(board.len().unwrap(), 3);
        assert_eq!(board.round().unwrap(), 1);
        let r0 = board.postings_in_round(0).unwrap();
        assert_eq!(r0.len(), 1);
        assert_eq!(r0[0].message, "hello");
        assert_eq!(r0[0].elements, 2);
        assert_eq!(&*r0[0].phase, "offline");
        let r1 = board.postings_in_round(1).unwrap();
        assert_eq!(r1.len(), 2);
        assert_eq!(r1[1].message, "b");
        assert_eq!(r1[1].from, RoleId::new("c1", 1));
        handle.shutdown();
    }

    #[test]
    fn loopback_cursor_and_meter_rebuild() {
        let (mut handle, board) = loopback::<u64>().unwrap();
        let mut cur = board.subscribe();
        let msgs: Vec<u64> = (0..10).collect();
        board.post_batch(RoleId::new("c", 0), "offline/x", &msgs, 3, 24).unwrap();
        let batch = cur.poll().unwrap();
        assert_eq!(batch.len(), 10);
        // A remote auditor rebuilds the meter from posting metadata.
        let total: u64 = batch.iter().map(|p| p.elements).sum();
        assert_eq!(total, 30);
        assert_eq!(board.meter().phase("offline/x").elements, 30);
        assert!(cur.poll().unwrap().is_empty());
        handle.shutdown();
    }

    #[test]
    fn two_clients_share_one_server() {
        let (mut handle, board_a) = loopback::<u64>().unwrap();
        let board_b: crate::BulletinBoard<u64> =
            crate::BulletinBoard::connect_tcp(handle.addr()).unwrap();
        board_a.post(RoleId::new("c", 0), 1, "x", 1, 8).unwrap();
        board_b.post(RoleId::new("c", 1), 2, "x", 1, 8).unwrap();
        // Both observe the same sequenced log.
        assert_eq!(board_a.len().unwrap(), 2);
        assert_eq!(board_b.len().unwrap(), 2);
        let log = board_b.postings().unwrap();
        assert_eq!(log[0].message, 1);
        assert_eq!(log[1].message, 2);
        handle.shutdown();
    }

    #[test]
    fn connect_to_dead_server_fails_after_retries() {
        let opts = TcpOptions {
            connect_attempts: 2,
            retry_delay: Duration::from_millis(5),
            ..TcpOptions::default()
        };
        // Bind-then-drop to get a port that is very likely unused.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let res = TcpTransport::<u64>::connect(addr, opts);
        assert!(matches!(res, Err(BoardError::Io(_))));
    }

    fn read_raw_frame(s: &mut TcpStream) -> Vec<u8> {
        let mut len = [0u8; 4];
        s.read_exact(&mut len).unwrap();
        let mut body = vec![0u8; u32::from_le_bytes(len) as usize];
        s.read_exact(&mut body).unwrap();
        body
    }

    #[test]
    fn idle_client_survives_poll_timeouts() {
        // A driver computing for longer than the server's idle poll
        // schedule must not be disconnected: the tick is an idle
        // signal, not a deadline (SO_RCVTIMEO expiry is WouldBlock on
        // Unix).
        let (mut handle, board) = loopback::<u64>().unwrap();
        board.post(RoleId::new("c", 0), 1, "x", 1, 8).unwrap();
        std::thread::sleep(Duration::from_millis(600));
        board.post(RoleId::new("c", 1), 2, "x", 1, 8).unwrap();
        assert_eq!(board.len().unwrap(), 2);
        handle.shutdown();
    }

    #[test]
    fn parked_idle_connection_still_accepts_posts() {
        // Past ~1.2s of silence the handler parks in a blocking read
        // (no more poll wakeups at all); arriving traffic must simply
        // unblock it.
        let (mut handle, board) = loopback::<u64>().unwrap();
        board.post(RoleId::new("c", 0), 1, "x", 1, 8).unwrap();
        std::thread::sleep(Duration::from_millis(2000));
        board.post(RoleId::new("c", 1), 2, "x", 1, 8).unwrap();
        assert_eq!(board.len().unwrap(), 2);
        handle.shutdown();
    }

    #[test]
    fn shutdown_wakes_parked_connection() {
        // A handler parked in a blocking read must not wedge server
        // shutdown: the accept loop shuts the registered socket down,
        // the read returns, the handler exits.
        let (mut handle, board) = loopback::<u64>().unwrap();
        board.post(RoleId::new("c", 0), 1, "x", 1, 8).unwrap();
        std::thread::sleep(Duration::from_millis(1500)); // past the park threshold
        handle.shutdown(); // must return promptly rather than hang
    }

    #[test]
    fn slow_mid_frame_write_is_not_treated_as_idle() {
        // Once a frame has started, poll-timeout expiries must continue
        // the read from the partial position instead of restarting the
        // frame (which would desync) or dropping the connection.
        let server = BoardServer::bind(SocketAddr::from(([127, 0, 0, 1], 0))).unwrap();
        let mut handle = server.spawn().unwrap();
        let mut s = TcpStream::connect(handle.addr()).unwrap();
        s.write_all(&1u32.to_le_bytes()).unwrap(); // length prefix only
        s.flush().unwrap();
        std::thread::sleep(Duration::from_millis(500)); // > 2 poll ticks
        s.write_all(&[op::GET_ROUND]).unwrap(); // frame body, late
        s.flush().unwrap();
        let resp = read_raw_frame(&mut s);
        assert_eq!(resp.first(), Some(&op::RESP_VALUE));
        handle.shutdown();
    }

    #[test]
    fn oversized_frame_gets_named_error_before_close() {
        let server = BoardServer::bind(SocketAddr::from(([127, 0, 0, 1], 0))).unwrap();
        let mut handle = server.spawn().unwrap();
        let mut s = TcpStream::connect(handle.addr()).unwrap();
        s.write_all(&u32::MAX.to_le_bytes()).unwrap(); // ~4GiB "frame"
        s.flush().unwrap();
        let resp = read_raw_frame(&mut s);
        assert_eq!(resp.first(), Some(&op::RESP_ERR));
        let mut cur = WireCursor::new(&resp[1..]);
        assert!(cur.str().unwrap().contains("exceeds cap"));
        handle.shutdown();
    }

    #[test]
    fn large_batch_is_chunked_under_the_frame_cap() {
        let server = BoardServer::bind(SocketAddr::from(([127, 0, 0, 1], 0))).unwrap();
        let mut handle = server.spawn().unwrap();
        let opts = TcpOptions { max_post_frame_bytes: 64, ..TcpOptions::default() };
        let t = TcpTransport::<u64>::connect(handle.addr(), opts).unwrap();
        let phase: Arc<str> = Arc::from("x");
        let n = t
            .post_stream(&mut (0..50u64).map(|m| PostRecord {
                from: RoleId::new("c", m as usize),
                phase: Arc::clone(&phase),
                message: m,
                elements: 1,
                bytes: 8,
            }))
            .unwrap();
        assert_eq!(n, 50);
        assert_eq!(t.len().unwrap(), 50);
        let all = t.read_from(0).unwrap();
        // Chunk boundaries must not reorder or drop records.
        for (i, p) in all.iter().enumerate() {
            assert_eq!(p.message, i as u64);
            assert_eq!(p.from, RoleId::new("c", i));
        }
        handle.shutdown();
    }

    #[test]
    fn server_survives_client_disconnect() {
        let (mut handle, board) = loopback::<u64>().unwrap();
        board.post(RoleId::new("c", 0), 7, "x", 1, 8).unwrap();
        drop(board);
        let board2: crate::BulletinBoard<u64> =
            crate::BulletinBoard::connect_tcp(handle.addr()).unwrap();
        assert_eq!(board2.len().unwrap(), 1);
        handle.shutdown();
    }

    /// The encoded wire size of one `u64`-message record from
    /// committee `"c"`: committee str (4+1) + index (8) + phase str
    /// (4+1) + elements (8) + bytes (8) + payload (4+8).
    fn u64_record_len(phase_len: usize) -> usize {
        4 + 1 + 8 + 4 + phase_len + 8 + 8 + 4 + 8
    }

    fn u64_records(n: u64, phase: &Arc<str>) -> impl Iterator<Item = PostRecord<u64>> + '_ {
        (0..n).map(move |m| PostRecord {
            from: RoleId::new("c", m as usize),
            phase: Arc::clone(phase),
            message: m,
            elements: 1,
            bytes: 8,
        })
    }

    #[test]
    fn chunking_splits_exactly_at_the_frame_cap_boundary() {
        // Boundary-value coverage for the chunking loop: with the cap
        // set to hold exactly K records, N = 3K records must produce
        // exactly 3 frames (no off-by-one slack), and one byte less
        // must tip it to 4.
        let (mut handle, _board) = loopback::<u64>().unwrap();
        let phase: Arc<str> = Arc::from("x");
        let k = 5usize;
        let exact_cap = 5 + k * u64_record_len(1);
        for (cap, want_frames) in [(exact_cap, 3u64), (exact_cap - 1, 4u64)] {
            let opts = TcpOptions {
                max_post_frame_bytes: cap,
                pipeline_window: 1,
                ..TcpOptions::default()
            };
            let t = TcpTransport::<u64>::connect(handle.addr(), opts).unwrap();
            let n = t.post_stream(&mut u64_records(3 * k as u64, &phase)).unwrap();
            assert_eq!(n, 3 * k as u64);
            assert_eq!(t.wire_stats().post_frames, want_frames, "cap {cap}");
        }
        handle.shutdown();
    }

    #[test]
    fn pipelined_chunking_matches_lockstep_frame_count() {
        let (mut handle, _board) = loopback::<u64>().unwrap();
        let phase: Arc<str> = Arc::from("x");
        let k = 4usize;
        let cap = 5 + k * u64_record_len(1);
        let opts = TcpOptions {
            max_post_frame_bytes: cap,
            pipeline_window: 3,
            ..TcpOptions::default()
        };
        let t = TcpTransport::<u64>::connect(handle.addr(), opts).unwrap();
        let n = t.post_stream(&mut u64_records(8 * k as u64, &phase)).unwrap();
        assert_eq!(n, 8 * k as u64);
        let stats = t.wire_stats();
        assert_eq!(stats.post_frames, 8);
        // 8 frames / window 3 = 2 mid-flush syncs + the terminal one.
        assert_eq!(stats.sync_round_trips, 3);
        assert_eq!(t.len().unwrap(), 8 * k);
        let server = t.server_stats().unwrap();
        assert_eq!(server.post_frames, 8);
        assert_eq!(server.acked_frames, 8);
        assert_eq!(server.max_window, 3);
        handle.shutdown();
    }

    #[test]
    fn pipelined_and_lockstep_transcripts_are_identical() {
        let run = |opts: TcpOptions| {
            let (mut handle, board) = loopback_with::<u64>(opts).unwrap();
            let phase: Arc<str> = Arc::from("p");
            for round in 0..3u64 {
                board
                    .post_record_stream(u64_records(40, &phase).map(|mut r| {
                        r.message += 1000 * round;
                        r
                    }))
                    .unwrap();
                board.advance_round().unwrap();
            }
            let log: Vec<(u64, String, u64)> = board
                .postings()
                .unwrap()
                .into_iter()
                .map(|p| (p.round, p.from.to_string(), p.message))
                .collect();
            handle.shutdown();
            log
        };
        let lockstep = run(TcpOptions {
            pipeline_window: 1,
            max_post_frame_bytes: 256,
            ..TcpOptions::default()
        });
        let pipelined = run(TcpOptions {
            pipeline_window: 8,
            max_post_frame_bytes: 256,
            ..TcpOptions::default()
        });
        assert_eq!(lockstep, pipelined);
        assert_eq!(lockstep.len(), 120);
    }

    /// Builds one raw `PostPipe`/`PostBatch` frame body holding `count`
    /// valid `u64` records (or a truncated, malformed one).
    fn raw_post_body(opcode: u8, count: u32, malformed: bool) -> Vec<u8> {
        let mut body = vec![opcode];
        put_u32(&mut body, count);
        for m in 0..count {
            put_str(&mut body, "c").unwrap();
            put_u64(&mut body, u64::from(m));
            put_str(&mut body, "x").unwrap();
            put_u64(&mut body, 1);
            put_u64(&mut body, 8);
            put_bytes(&mut body, &u64::from(m).to_le_bytes()).unwrap();
        }
        if malformed {
            body.truncate(body.len() - 3); // rip the tail off the last record
        }
        body
    }

    fn send_raw_frame(s: &mut TcpStream, body: &[u8]) {
        s.write_all(&u32::try_from(body.len()).unwrap().to_le_bytes()).unwrap();
        s.write_all(body).unwrap();
        s.flush().unwrap();
    }

    #[test]
    fn pipelined_error_names_the_offending_frame_and_closes() {
        // A malformed frame mid-window must be rejected by index, the
        // valid frames before it must be appended, the buffered frames
        // after it must NOT be, and the connection must close.
        let server = BoardServer::bind(SocketAddr::from(([127, 0, 0, 1], 0))).unwrap();
        let mut handle = server.spawn().unwrap();
        let mut s = TcpStream::connect(handle.addr()).unwrap();
        send_raw_frame(&mut s, &raw_post_body(op::POST_PIPE, 2, false)); // frame 0
        send_raw_frame(&mut s, &raw_post_body(op::POST_PIPE, 2, false)); // frame 1
        send_raw_frame(&mut s, &raw_post_body(op::POST_PIPE, 2, true)); // frame 2: malformed
        send_raw_frame(&mut s, &raw_post_body(op::POST_PIPE, 2, false)); // buffered behind the error
        send_raw_frame(&mut s, &[op::POST_SYNC]);
        let resp = read_raw_frame(&mut s);
        assert_eq!(resp.first(), Some(&op::RESP_ERR));
        let mut cur = WireCursor::new(&resp[1..]);
        let msg = cur.str().unwrap().to_string();
        assert!(msg.contains("pipelined frame 2"), "error must name the frame: {msg}");
        // The connection is closed: the next read sees EOF, not a
        // response to the sync.
        let mut probe = [0u8; 1];
        assert_eq!(s.read(&mut probe).unwrap(), 0);
        // Frames 0 and 1 landed; frame 2 and the buffered frame 3 did
        // not — no silent divergence.
        let t = TcpTransport::<u64>::connect(handle.addr(), TcpOptions::default()).unwrap();
        assert_eq!(t.len().unwrap(), 4);
        handle.shutdown();
    }

    #[test]
    fn pipelined_flush_to_dying_server_fails_that_flush() {
        // Killing the server mid-stream must fail the in-progress
        // flush (at its sync barrier), not silently succeed.
        let (mut handle, board) = loopback::<u64>().unwrap();
        board.post(RoleId::new("c", 0), 1, "x", 1, 8).unwrap();
        handle.shutdown();
        let phase: Arc<str> = Arc::from("x");
        let err = board.post_record_stream(u64_records(10, &phase)).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("closed") || msg.contains("error") || msg.contains("pipe"),
            "unexpected error shape: {msg}"
        );
    }

    #[test]
    fn frame_at_exactly_the_server_cap_is_accepted_and_one_over_rejected() {
        // The 64MiB cap is inclusive: a frame of exactly MAX_FRAME
        // bytes must be appended, one byte more must draw the named
        // RESP_ERR. Build the exact-size frame around one huge record.
        let server = BoardServer::bind(SocketAddr::from(([127, 0, 0, 1], 0))).unwrap();
        let mut handle = server.spawn().unwrap();
        // Fixed per-record overhead for committee "c", phase "x":
        // opcode 1 + count 4 + header (4+1 + 8 + 4+1 + 8 + 8) + payload prefix 4.
        let overhead = 1 + 4 + (4 + 1 + 8 + 4 + 1 + 8 + 8) + 4;
        let payload_len = MAX_FRAME - overhead;
        let mut body = vec![op::POST_BATCH];
        put_u32(&mut body, 1);
        put_str(&mut body, "c").unwrap();
        put_u64(&mut body, 0);
        put_str(&mut body, "x").unwrap();
        put_u64(&mut body, 1);
        put_u64(&mut body, payload_len as u64);
        put_bytes(&mut body, &vec![0xA5u8; payload_len]).unwrap();
        assert_eq!(body.len(), MAX_FRAME);
        let mut s = TcpStream::connect(handle.addr()).unwrap();
        send_raw_frame(&mut s, &body);
        let resp = read_raw_frame(&mut s);
        assert_eq!(resp.first(), Some(&op::RESP_OK));
        // One byte over: only the length prefix needs to lie.
        let mut s2 = TcpStream::connect(handle.addr()).unwrap();
        s2.write_all(&u32::try_from(MAX_FRAME + 1).unwrap().to_le_bytes()).unwrap();
        s2.flush().unwrap();
        let resp2 = read_raw_frame(&mut s2);
        assert_eq!(resp2.first(), Some(&op::RESP_ERR));
        let mut cur = WireCursor::new(&resp2[1..]);
        assert!(cur.str().unwrap().contains("exceeds cap"));
        let t = TcpTransport::<u64>::connect(handle.addr(), TcpOptions::default()).unwrap();
        assert_eq!(t.len().unwrap(), 1);
        handle.shutdown();
    }

    #[test]
    fn reads_interleaved_with_unacked_pipelined_frames_are_rejected() {
        // The pipelined-run discipline: a client must sync before
        // issuing any other request, otherwise the server closes the
        // connection with a named error.
        let server = BoardServer::bind(SocketAddr::from(([127, 0, 0, 1], 0))).unwrap();
        let mut handle = server.spawn().unwrap();
        let mut s = TcpStream::connect(handle.addr()).unwrap();
        send_raw_frame(&mut s, &raw_post_body(op::POST_PIPE, 1, false));
        send_raw_frame(&mut s, &[op::GET_LEN]);
        let resp = read_raw_frame(&mut s);
        assert_eq!(resp.first(), Some(&op::RESP_ERR));
        let mut cur = WireCursor::new(&resp[1..]);
        assert!(cur.str().unwrap().contains("unacknowledged"));
        let mut probe = [0u8; 1];
        assert_eq!(s.read(&mut probe).unwrap(), 0);
        handle.shutdown();
    }
}
