//! TCP bulletin-board backend: a length-prefix-framed client/server
//! pair so committee drivers and auditors run as separate OS
//! processes.
//!
//! # Wire protocol
//!
//! Every frame is `u32` little-endian length followed by that many
//! body bytes; the first body byte is an opcode. Requests:
//!
//! | op   | name          | body                                        |
//! |------|---------------|---------------------------------------------|
//! | 0x01 | `PostBatch`   | `u32` count, then per record: committee str, index `u64`, phase str, elements `u64`, bytes `u64`, payload bytes |
//! | 0x02 | `AdvanceRound`| —                                           |
//! | 0x03 | `GetRound`    | —                                           |
//! | 0x04 | `GetLen`      | —                                           |
//! | 0x05 | `ReadRound`   | round `u64`                                 |
//! | 0x06 | `ReadFrom`    | cursor `u64`                                |
//! | 0x07 | `Shutdown`    | —                                           |
//!
//! Responses: `0x80` ok, `0x81` value (`u64`), `0x82` postings
//! (`u32` count, then per posting: round `u64`, committee str, index
//! `u64`, phase str, elements `u64`, bytes `u64`, payload bytes),
//! `0xEE` error (str). Strings and byte strings are `u32`-length
//! prefixed.
//!
//! # Sequencing = determinism
//!
//! The server appends each `PostBatch` frame **atomically** under one
//! lock, in frame-arrival order, tagging records with the current
//! round — the same total-order contract as the in-process backend's
//! single write lock. A driver posting from one logical thread (the
//! engine's coordinator, which already serializes the parallel
//! workers' buffers in item order) therefore produces a byte-identical
//! posting log over TCP and in-process; the transport-parity suite in
//! `yoso-core` asserts exactly that. Message payloads cross the wire
//! via the deterministic [`WireMessage`] codec, never a `Debug` or
//! serde format.
//!
//! A logical batch whose encoding exceeds [`TcpOptions::max_post_frame_bytes`]
//! is split client-side into several consecutive `PostBatch` frames
//! sent back-to-back on the one connection (the lock is held across
//! all chunks), so arbitrarily large buffer flushes stay under the
//! server's frame cap without reordering; each frame is still appended
//! atomically, but whole-batch atomicity is relaxed to per-frame for
//! oversized batches.
//!
//! The server stores payloads as opaque bytes — it needs no knowledge
//! of the message type, so one `board-server` binary serves any
//! protocol. Clients retry connects (the server may still be starting)
//! and idempotent reads; posts and round advances are never retried
//! blindly, so a hard failure surfaces as [`BoardError::Io`] instead
//! of a duplicated posting.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
// lint:allow(determinism): `Duration` is used only for socket
// timeouts and retry backoff — no wall-clock value is ever read or
// enters the posting log, so the transcript stays time-independent.
use std::time::Duration;

use parking_lot::Mutex;

use crate::board::Posting;
use crate::role::RoleId;
use crate::transport::{
    put_bytes, put_str, put_u32, put_u64, BoardError, BoardTransport, PostRecord, RoundLog,
    WireCursor, WireMessage,
};

/// Frames larger than this are rejected (corrupt length prefix guard).
const MAX_FRAME: usize = 64 << 20;

mod op {
    pub const POST_BATCH: u8 = 0x01;
    pub const ADVANCE_ROUND: u8 = 0x02;
    pub const GET_ROUND: u8 = 0x03;
    pub const GET_LEN: u8 = 0x04;
    pub const READ_ROUND: u8 = 0x05;
    pub const READ_FROM: u8 = 0x06;
    pub const SHUTDOWN: u8 = 0x07;
    pub const RESP_OK: u8 = 0x80;
    pub const RESP_VALUE: u8 = 0x81;
    pub const RESP_POSTINGS: u8 = 0x82;
    pub const RESP_ERR: u8 = 0xEE;
}

fn io_err(context: &str, e: &std::io::Error) -> BoardError {
    BoardError::Io(format!("{context}: {e}"))
}

/// Writes one length-prefixed frame.
fn write_frame(stream: &mut TcpStream, body: &[u8]) -> Result<(), BoardError> {
    let len = u32::try_from(body.len()).map_err(|_| {
        BoardError::Protocol(format!(
            "frame body of {} bytes exceeds the u32 length prefix",
            body.len()
        ))
    })?;
    stream.write_all(&len.to_le_bytes()).map_err(|e| io_err("write frame length", &e))?;
    stream.write_all(body).map_err(|e| io_err("write frame body", &e))?;
    stream.flush().map_err(|e| io_err("flush frame", &e))
}

/// Reads one length-prefixed frame (client side: a read timeout here is
/// a hard error — the caller drops and reconnects, so partial reads
/// cannot desync the stream). `Ok(None)` means the peer closed the
/// connection cleanly before a new frame began.
fn read_frame(stream: &mut TcpStream) -> Result<Option<Vec<u8>>, BoardError> {
    let mut len_buf = [0u8; 4];
    match stream.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(io_err("read frame length", &e)),
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(BoardError::Protocol(format!("frame of {len} bytes exceeds cap")));
    }
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body).map_err(|e| io_err("read frame body", &e))?;
    Ok(Some(body))
}

/// Whether an I/O error is a socket read-timeout expiry. On Unix a
/// `SO_RCVTIMEO` expiry surfaces as `WouldBlock` ("Resource temporarily
/// unavailable"), on Windows as `TimedOut` — match the [`std::io::ErrorKind`],
/// never the display string.
fn is_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut)
}

/// Outcome of one poll-aware server-side frame read.
enum FrameRead {
    /// A complete frame body.
    Frame(Vec<u8>),
    /// The poll timeout expired before any byte of the next frame
    /// arrived — the connection is idle, not broken.
    Idle,
    /// The peer closed the connection cleanly between frames.
    Closed,
}

/// Consecutive idle-poll ticks tolerated *mid-frame* before the
/// connection is declared dead (300 × 200ms = 60s without a byte).
const MAX_MIDFRAME_STALL_TICKS: u32 = 300;

/// Reads one frame on a connection whose read timeout doubles as the
/// idle-poll tick. A timeout before the first byte of the next frame is
/// `Idle` (the caller re-checks its shutdown flag and polls again); a
/// timeout *mid-frame* keeps reading from where the partial read left
/// off — `read_exact` discards consumed bytes on timeout, so restarting
/// the frame would desync the stream. A peer that stalls mid-frame for
/// [`MAX_MIDFRAME_STALL_TICKS`] consecutive ticks is treated as dead.
fn read_frame_polled(stream: &mut TcpStream) -> Result<FrameRead, BoardError> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0usize;
    let mut stalled = 0u32;
    while filled < len_buf.len() {
        match stream.read(&mut len_buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(FrameRead::Closed),
            Ok(0) => {
                return Err(BoardError::Protocol("peer closed mid-frame".into()));
            }
            Ok(n) => {
                filled += n;
                stalled = 0;
            }
            Err(e) if is_timeout(&e) => {
                if filled == 0 {
                    return Ok(FrameRead::Idle);
                }
                stalled += 1;
                if stalled > MAX_MIDFRAME_STALL_TICKS {
                    return Err(io_err("read frame length (peer stalled mid-frame)", &e));
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(io_err("read frame length", &e)),
        }
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(BoardError::Protocol(format!("frame of {len} bytes exceeds cap")));
    }
    let mut body = vec![0u8; len];
    let mut got = 0usize;
    let mut stalled = 0u32;
    while got < len {
        match stream.read(&mut body[got..]) {
            Ok(0) => {
                return Err(BoardError::Protocol("peer closed mid-frame".into()));
            }
            Ok(n) => {
                got += n;
                stalled = 0;
            }
            Err(e) if is_timeout(&e) => {
                stalled += 1;
                if stalled > MAX_MIDFRAME_STALL_TICKS {
                    return Err(io_err("read frame body (peer stalled mid-frame)", &e));
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(io_err("read frame body", &e)),
        }
    }
    Ok(FrameRead::Frame(body))
}

/// One posting as the server stores it: all board metadata plus the
/// message payload as opaque bytes.
#[derive(Debug, Clone)]
struct RawPosting {
    round: u64,
    committee: String,
    index: u64,
    phase: String,
    elements: u64,
    bytes: u64,
    payload: Vec<u8>,
}

fn encode_raw_posting(out: &mut Vec<u8>, p: &RawPosting) -> Result<(), BoardError> {
    put_u64(out, p.round);
    put_str(out, &p.committee)?;
    put_u64(out, p.index);
    put_str(out, &p.phase)?;
    put_u64(out, p.elements);
    put_u64(out, p.bytes);
    put_bytes(out, &p.payload)
}

/// Builds a `RESP_ERR` body carrying `msg`.
fn err_response(msg: &str) -> Vec<u8> {
    let mut out = vec![op::RESP_ERR];
    if put_str(&mut out, msg).is_err() {
        // An error string over u32::MAX bytes cannot occur in practice;
        // keep the frame well-formed if it somehow does.
        out.truncate(1);
        let _ = put_str(&mut out, "error message too large");
    }
    out
}

fn decode_posting<M: WireMessage>(cur: &mut WireCursor<'_>) -> Result<Posting<M>, BoardError> {
    let round = cur.u64()?;
    let committee = cur.str()?.to_string();
    let index = cur.u64()? as usize;
    let phase: Arc<str> = Arc::from(cur.str()?);
    let elements = cur.u64()?;
    let bytes = cur.u64()?;
    let payload = cur.bytes()?;
    let mut pc = WireCursor::new(payload);
    let message = M::decode(&mut pc)?;
    Ok(Posting { round, from: RoleId::new(committee, index), phase, message, elements, bytes })
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

/// State shared between the accept loop and connection handlers.
#[derive(Debug, Default)]
struct ServerShared {
    log: Mutex<RoundLog<RawPosting>>,
    shutdown: AtomicBool,
}

impl ServerShared {
    /// Handles one decoded request body, returning the response body.
    fn dispatch(&self, body: &[u8]) -> Vec<u8> {
        match self.try_dispatch(body) {
            Ok(resp) => resp,
            Err(e) => err_response(&e.to_string()),
        }
    }

    fn try_dispatch(&self, body: &[u8]) -> Result<Vec<u8>, BoardError> {
        let mut cur = WireCursor::new(body);
        let opcode = cur.u8()?;
        match opcode {
            op::POST_BATCH => {
                let count = cur.u32()? as usize;
                let mut records = Vec::with_capacity(count);
                for _ in 0..count {
                    let committee = cur.str()?.to_string();
                    let index = cur.u64()?;
                    let phase = cur.str()?.to_string();
                    let elements = cur.u64()?;
                    let bytes = cur.u64()?;
                    let payload = cur.bytes()?.to_vec();
                    records.push((committee, index, phase, elements, bytes, payload));
                }
                // One lock for the whole batch: the atomic append that
                // makes server arrival order the global posting order.
                let mut g = self.log.lock();
                let round = g.round;
                for (committee, index, phase, elements, bytes, payload) in records {
                    g.postings.push(RawPosting {
                        round,
                        committee,
                        index,
                        phase,
                        elements,
                        bytes,
                        payload,
                    });
                }
                Ok(vec![op::RESP_OK])
            }
            op::ADVANCE_ROUND => {
                let round = self.log.lock().advance();
                let mut out = vec![op::RESP_VALUE];
                put_u64(&mut out, round);
                Ok(out)
            }
            op::GET_ROUND => {
                let round = self.log.lock().round;
                let mut out = vec![op::RESP_VALUE];
                put_u64(&mut out, round);
                Ok(out)
            }
            op::GET_LEN => {
                let len = self.log.lock().postings.len() as u64;
                let mut out = vec![op::RESP_VALUE];
                put_u64(&mut out, len);
                Ok(out)
            }
            op::READ_ROUND => {
                let round = cur.u64()?;
                let g = self.log.lock();
                let range = g.round_range(round);
                encode_postings(&g.postings[range])
            }
            op::READ_FROM => {
                let cursor = cur.u64()? as usize;
                let g = self.log.lock();
                let lo = cursor.min(g.postings.len());
                encode_postings(&g.postings[lo..])
            }
            op::SHUTDOWN => {
                self.shutdown.store(true, Ordering::SeqCst);
                Ok(vec![op::RESP_OK])
            }
            other => Err(BoardError::Protocol(format!("unknown opcode {other:#x}"))),
        }
    }
}

fn encode_postings(postings: &[RawPosting]) -> Result<Vec<u8>, BoardError> {
    let count = u32::try_from(postings.len()).map_err(|_| {
        BoardError::Protocol(format!("{} postings exceed the u32 count prefix", postings.len()))
    })?;
    let mut out = vec![op::RESP_POSTINGS];
    put_u32(&mut out, count);
    for p in postings {
        encode_raw_posting(&mut out, p)?;
    }
    Ok(out)
}

fn handle_connection(shared: &ServerShared, mut stream: TcpStream) {
    // A finite read timeout lets the handler notice a server shutdown
    // even while a client holds the connection open but idle;
    // `read_frame_polled` reports those expiries as `FrameRead::Idle`
    // only while no frame is in flight.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let _ = stream.set_nodelay(true);
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match read_frame_polled(&mut stream) {
            Ok(FrameRead::Frame(body)) => {
                let resp = shared.dispatch(&body);
                if write_frame(&mut stream, &resp).is_err() {
                    return;
                }
            }
            Ok(FrameRead::Idle) => continue, // re-check the shutdown flag
            Ok(FrameRead::Closed) => return, // clean disconnect
            Err(e) => {
                // Framing violation or hard I/O error: the stream
                // position is no longer trustworthy, so the connection
                // must close — but name the cause first, so the
                // client's non-retried post surfaces the violation
                // instead of a generic "server closed the connection".
                let _ = write_frame(&mut stream, &err_response(&e.to_string()));
                return;
            }
        }
    }
}

/// A board server bound to a TCP address, serving any number of
/// clients until shut down (via the wire opcode or [`ServerHandle`]).
#[derive(Debug)]
pub struct BoardServer {
    listener: TcpListener,
    shared: Arc<ServerShared>,
}

impl BoardServer {
    /// Binds the server socket (not yet accepting).
    ///
    /// # Errors
    ///
    /// Returns [`BoardError::Io`] if binding fails.
    pub fn bind(addr: SocketAddr) -> Result<Self, BoardError> {
        let listener = TcpListener::bind(addr).map_err(|e| io_err("bind", &e))?;
        listener.set_nonblocking(true).map_err(|e| io_err("set_nonblocking", &e))?;
        Ok(BoardServer { listener, shared: Arc::new(ServerShared::default()) })
    }

    /// The bound address (with the OS-assigned port when bound to `:0`).
    ///
    /// # Errors
    ///
    /// Returns [`BoardError::Io`] if the socket has no local address.
    pub fn local_addr(&self) -> Result<SocketAddr, BoardError> {
        self.listener.local_addr().map_err(|e| io_err("local_addr", &e))
    }

    /// Serves connections on the calling thread until a `Shutdown`
    /// frame arrives (or the process is killed).
    pub fn serve(self) {
        accept_loop(&self.listener, &self.shared);
    }

    /// Serves connections on a background thread; the returned handle
    /// stops the server when shut down or dropped.
    pub fn spawn(self) -> Result<ServerHandle, BoardError> {
        let addr = self.local_addr()?;
        let shared = Arc::clone(&self.shared);
        let thread = std::thread::Builder::new()
            .name("board-server".into())
            .spawn(move || self.serve())
            .map_err(|e| io_err("spawn server thread", &e))?;
        Ok(ServerHandle { addr, shared, thread: Some(thread) })
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<ServerShared>) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(shared);
                let _ = std::thread::Builder::new()
                    .name("board-conn".into())
                    .spawn(move || handle_connection(&shared, stream));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(1)),
        }
    }
}

/// Handle to a background [`BoardServer`]; shuts the server down when
/// dropped.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<ServerShared>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The server's listening address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the server thread. Connection
    /// handlers notice the flag within their poll tick and exit.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// Client-side knobs: connect retry budget and I/O timeouts.
#[derive(Debug, Clone, Copy)]
pub struct TcpOptions {
    /// Connection attempts before giving up (the server may still be
    /// starting when the committee process launches).
    pub connect_attempts: u32,
    /// Delay between connection attempts.
    pub retry_delay: Duration,
    /// Read/write timeout on the established stream.
    pub io_timeout: Duration,
    /// Extra attempts (with reconnect) for idempotent reads. Posts and
    /// round advances are never retried: a retry after a partially
    /// processed frame could duplicate a posting.
    pub read_retries: u32,
    /// Soft cap on one `PostBatch` frame body. A logical batch larger
    /// than this (a full parallel buffer flush can exceed the server's
    /// 64MB frame cap) is split into multiple frames, sent back-to-back
    /// on the single connection — see [`TcpTransport::post_stream`] for
    /// the atomicity contract. Clamped to [`MAX_FRAME`].
    pub max_post_frame_bytes: usize,
}

impl Default for TcpOptions {
    fn default() -> Self {
        TcpOptions {
            connect_attempts: 50,
            retry_delay: Duration::from_millis(40),
            io_timeout: Duration::from_secs(10),
            read_retries: 3,
            max_post_frame_bytes: MAX_FRAME / 2,
        }
    }
}

/// A [`BoardTransport`] over one TCP connection to a `board-server`.
///
/// All requests are serialized on the single connection (one mutex),
/// which is exactly the ordering the determinism argument needs: the
/// posting order the server sees is the order this process issued.
#[derive(Debug)]
pub struct TcpTransport<M> {
    addr: SocketAddr,
    /// Backend label: `"loopback-tcp"` when `addr` is a loopback
    /// address, `"tcp"` for a genuinely remote server — diagnostics and
    /// bench tables should name the actual deployment shape.
    label: &'static str,
    opts: TcpOptions,
    stream: Mutex<Option<TcpStream>>,
    _marker: std::marker::PhantomData<fn() -> M>,
}

impl<M> TcpTransport<M> {
    /// Connects to `addr`, retrying per `opts` while the server comes
    /// up.
    ///
    /// # Errors
    ///
    /// Returns [`BoardError::Io`] if every attempt fails.
    pub fn connect(addr: SocketAddr, opts: TcpOptions) -> Result<Self, BoardError> {
        let stream = connect_with_retry(addr, &opts)?;
        let label = if addr.ip().is_loopback() { "loopback-tcp" } else { "tcp" };
        Ok(TcpTransport {
            addr,
            label,
            opts,
            stream: Mutex::new(Some(stream)),
            _marker: std::marker::PhantomData,
        })
    }

    /// The server address this transport talks to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Sends `body` and returns the response body. `idempotent`
    /// requests are retried with a fresh connection on I/O failure.
    fn call(&self, body: &[u8], idempotent: bool) -> Result<Vec<u8>, BoardError> {
        let mut guard = self.stream.lock();
        self.call_locked(&mut guard, body, idempotent)
    }

    /// [`Self::call`] against an already-locked connection slot, so a
    /// multi-frame operation (chunked `post_stream`) keeps its frames
    /// contiguous in the server's arrival order.
    fn call_locked(
        &self,
        guard: &mut Option<TcpStream>,
        body: &[u8],
        idempotent: bool,
    ) -> Result<Vec<u8>, BoardError> {
        let attempts = 1 + if idempotent { self.opts.read_retries } else { 0 };
        let mut last_err = BoardError::Io("no attempt made".into());
        for attempt in 0..attempts {
            if attempt > 0 {
                std::thread::sleep(self.opts.retry_delay);
            }
            if guard.is_none() {
                match connect_with_retry(self.addr, &self.opts) {
                    Ok(s) => *guard = Some(s),
                    Err(e) => {
                        last_err = e;
                        continue;
                    }
                }
            }
            let Some(stream) = guard.as_mut() else { continue };
            let result = write_frame(stream, body).and_then(|()| read_frame(stream));
            match result {
                Ok(Some(resp)) => return check_response(resp),
                Ok(None) => {
                    last_err = BoardError::Io("server closed the connection".into());
                    *guard = None;
                }
                Err(e) => {
                    last_err = e;
                    *guard = None;
                }
            }
        }
        Err(last_err)
    }

    /// Sends one `PostBatch` frame holding `count` records: patches the
    /// count prefix, issues the call on the locked connection, and
    /// resets `body` to an empty `PostBatch` header for the next chunk.
    fn send_post_frame(
        &self,
        guard: &mut Option<TcpStream>,
        body: &mut Vec<u8>,
        count: u32,
    ) -> Result<(), BoardError> {
        body[1..5].copy_from_slice(&count.to_le_bytes());
        let resp = self.call_locked(guard, body, false)?;
        if resp.first() != Some(&op::RESP_OK) {
            return Err(BoardError::Protocol("expected ok response to post".into()));
        }
        body.truncate(5);
        Ok(())
    }
}

fn connect_with_retry(addr: SocketAddr, opts: &TcpOptions) -> Result<TcpStream, BoardError> {
    let mut last = None;
    for attempt in 0..opts.connect_attempts.max(1) {
        if attempt > 0 {
            std::thread::sleep(opts.retry_delay);
        }
        match TcpStream::connect_timeout(&addr, opts.io_timeout) {
            Ok(stream) => {
                let _ = stream.set_nodelay(true);
                let _ = stream.set_read_timeout(Some(opts.io_timeout));
                let _ = stream.set_write_timeout(Some(opts.io_timeout));
                return Ok(stream);
            }
            Err(e) => last = Some(e),
        }
    }
    Err(BoardError::Io(format!(
        "could not connect to board server at {addr} after {} attempts: {}",
        opts.connect_attempts.max(1),
        last.map(|e| e.to_string()).unwrap_or_else(|| "no error".into())
    )))
}

/// Splits a response body into (opcode, payload), surfacing server-side
/// errors as [`BoardError::Protocol`].
fn check_response(resp: Vec<u8>) -> Result<Vec<u8>, BoardError> {
    match resp.first() {
        None => Err(BoardError::Protocol("empty response frame".into())),
        Some(&op::RESP_ERR) => {
            let mut cur = WireCursor::new(&resp[1..]);
            Err(BoardError::Protocol(format!("server error: {}", cur.str()?)))
        }
        Some(_) => Ok(resp),
    }
}

fn expect_value(resp: &[u8]) -> Result<u64, BoardError> {
    let mut cur = WireCursor::new(resp);
    if cur.u8()? != op::RESP_VALUE {
        return Err(BoardError::Protocol("expected value response".into()));
    }
    cur.u64()
}

fn expect_postings<M: WireMessage>(resp: &[u8]) -> Result<Vec<Posting<M>>, BoardError> {
    let mut cur = WireCursor::new(resp);
    if cur.u8()? != op::RESP_POSTINGS {
        return Err(BoardError::Protocol("expected postings response".into()));
    }
    let count = cur.u32()? as usize;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        out.push(decode_posting(&mut cur)?);
    }
    Ok(out)
}

impl<M: WireMessage + Clone + Send + Sync> BoardTransport<M> for TcpTransport<M> {
    fn post_batch(&self, records: Vec<PostRecord<M>>) -> Result<(), BoardError> {
        self.post_stream(&mut records.into_iter()).map(|_| ())
    }

    fn post_stream(
        &self,
        records: &mut dyn Iterator<Item = PostRecord<M>>,
    ) -> Result<u64, BoardError> {
        // Stream-encode straight into the frame body; the record count
        // prefix (bytes 1..5) is patched when each frame is sent. A
        // batch whose encoding would exceed `max_post_frame_bytes` is
        // split across several frames (the server's 64MB frame cap
        // would otherwise reject a large parallel buffer flush). The
        // connection lock is held across all chunks, so the sub-batches
        // land contiguously in the server's arrival order; each frame
        // is appended atomically, and a failure between frames can
        // leave a prefix of the batch posted — the same
        // "no blind retry" contract as a single lost post.
        let chunk_cap = self.opts.max_post_frame_bytes.min(MAX_FRAME);
        let mut body = vec![op::POST_BATCH, 0, 0, 0, 0];
        let mut record_buf = Vec::new();
        let mut payload = Vec::new();
        let mut count: u32 = 0;
        let mut total: u64 = 0;
        let mut guard = self.stream.lock();
        for r in records {
            record_buf.clear();
            put_str(&mut record_buf, &r.from.committee)?;
            put_u64(&mut record_buf, r.from.index as u64);
            put_str(&mut record_buf, &r.phase)?;
            put_u64(&mut record_buf, r.elements);
            put_u64(&mut record_buf, r.bytes);
            payload.clear();
            r.message.encode(&mut payload)?;
            put_bytes(&mut record_buf, &payload)?;
            if 5 + record_buf.len() > MAX_FRAME {
                return Err(BoardError::Protocol(format!(
                    "single posting of {} encoded bytes exceeds the {MAX_FRAME}-byte frame cap",
                    record_buf.len()
                )));
            }
            if count > 0 && body.len() + record_buf.len() > chunk_cap {
                self.send_post_frame(&mut guard, &mut body, count)?;
                total += u64::from(count);
                count = 0;
            }
            body.extend_from_slice(&record_buf);
            count += 1;
        }
        if count > 0 || total == 0 {
            self.send_post_frame(&mut guard, &mut body, count)?;
            total += u64::from(count);
        }
        Ok(total)
    }

    fn advance_round(&self) -> Result<u64, BoardError> {
        expect_value(&self.call(&[op::ADVANCE_ROUND], false)?)
    }

    fn round(&self) -> Result<u64, BoardError> {
        expect_value(&self.call(&[op::GET_ROUND], true)?)
    }

    fn len(&self) -> Result<usize, BoardError> {
        Ok(expect_value(&self.call(&[op::GET_LEN], true)?)? as usize)
    }

    fn read_round(&self, round: u64) -> Result<Vec<Posting<M>>, BoardError> {
        let mut body = vec![op::READ_ROUND];
        put_u64(&mut body, round);
        expect_postings(&self.call(&body, true)?)
    }

    fn read_from(&self, cursor: usize) -> Result<Vec<Posting<M>>, BoardError> {
        let mut body = vec![op::READ_FROM];
        put_u64(&mut body, cursor as u64);
        expect_postings(&self.call(&body, true)?)
    }

    fn backend_name(&self) -> &'static str {
        self.label
    }
}

impl<M> TcpTransport<M> {
    /// Asks the server to shut down (used by tests and single-owner
    /// deployments; multi-client deployments usually just kill the
    /// server process).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures reaching the server.
    pub fn shutdown_server(&self) -> Result<(), BoardError> {
        let resp = self.call(&[op::SHUTDOWN], false)?;
        if resp.first() != Some(&op::RESP_OK) {
            return Err(BoardError::Protocol("expected ok response to shutdown".into()));
        }
        Ok(())
    }
}

/// Spawns a board server on an ephemeral loopback port and connects a
/// board to it: the TCP stack exercised end-to-end inside one process
/// (tests, benches), no free port or second process required.
///
/// # Errors
///
/// Returns [`BoardError::Io`] if binding or connecting fails.
pub fn loopback<M: WireMessage + Clone + Send + Sync + 'static>(
) -> Result<(ServerHandle, crate::BulletinBoard<M>), BoardError> {
    let server = BoardServer::bind(SocketAddr::from(([127, 0, 0, 1], 0)))?;
    let handle = server.spawn()?;
    let board = crate::BulletinBoard::connect_tcp(handle.addr())?;
    Ok((handle, board))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_post_and_read_roundtrip() {
        let (mut handle, board) = loopback::<String>().unwrap();
        board.post(RoleId::new("c1", 0), "hello".into(), "offline", 2, 16).unwrap();
        board.advance_round().unwrap();
        board
            .post_batch(RoleId::new("c1", 1), "online", &["a".to_string(), "b".to_string()], 1, 8)
            .unwrap();
        assert_eq!(board.len().unwrap(), 3);
        assert_eq!(board.round().unwrap(), 1);
        let r0 = board.postings_in_round(0).unwrap();
        assert_eq!(r0.len(), 1);
        assert_eq!(r0[0].message, "hello");
        assert_eq!(r0[0].elements, 2);
        assert_eq!(&*r0[0].phase, "offline");
        let r1 = board.postings_in_round(1).unwrap();
        assert_eq!(r1.len(), 2);
        assert_eq!(r1[1].message, "b");
        assert_eq!(r1[1].from, RoleId::new("c1", 1));
        handle.shutdown();
    }

    #[test]
    fn loopback_cursor_and_meter_rebuild() {
        let (mut handle, board) = loopback::<u64>().unwrap();
        let mut cur = board.subscribe();
        let msgs: Vec<u64> = (0..10).collect();
        board.post_batch(RoleId::new("c", 0), "offline/x", &msgs, 3, 24).unwrap();
        let batch = cur.poll().unwrap();
        assert_eq!(batch.len(), 10);
        // A remote auditor rebuilds the meter from posting metadata.
        let total: u64 = batch.iter().map(|p| p.elements).sum();
        assert_eq!(total, 30);
        assert_eq!(board.meter().phase("offline/x").elements, 30);
        assert!(cur.poll().unwrap().is_empty());
        handle.shutdown();
    }

    #[test]
    fn two_clients_share_one_server() {
        let (mut handle, board_a) = loopback::<u64>().unwrap();
        let board_b: crate::BulletinBoard<u64> =
            crate::BulletinBoard::connect_tcp(handle.addr()).unwrap();
        board_a.post(RoleId::new("c", 0), 1, "x", 1, 8).unwrap();
        board_b.post(RoleId::new("c", 1), 2, "x", 1, 8).unwrap();
        // Both observe the same sequenced log.
        assert_eq!(board_a.len().unwrap(), 2);
        assert_eq!(board_b.len().unwrap(), 2);
        let log = board_b.postings().unwrap();
        assert_eq!(log[0].message, 1);
        assert_eq!(log[1].message, 2);
        handle.shutdown();
    }

    #[test]
    fn connect_to_dead_server_fails_after_retries() {
        let opts = TcpOptions {
            connect_attempts: 2,
            retry_delay: Duration::from_millis(5),
            ..TcpOptions::default()
        };
        // Bind-then-drop to get a port that is very likely unused.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let res = TcpTransport::<u64>::connect(addr, opts);
        assert!(matches!(res, Err(BoardError::Io(_))));
    }

    fn read_raw_frame(s: &mut TcpStream) -> Vec<u8> {
        let mut len = [0u8; 4];
        s.read_exact(&mut len).unwrap();
        let mut body = vec![0u8; u32::from_le_bytes(len) as usize];
        s.read_exact(&mut body).unwrap();
        body
    }

    #[test]
    fn idle_client_survives_poll_timeouts() {
        // A driver computing for longer than the server's 200ms poll
        // tick must not be disconnected: the tick is an idle signal,
        // not a deadline (SO_RCVTIMEO expiry is WouldBlock on Unix).
        let (mut handle, board) = loopback::<u64>().unwrap();
        board.post(RoleId::new("c", 0), 1, "x", 1, 8).unwrap();
        std::thread::sleep(Duration::from_millis(600));
        board.post(RoleId::new("c", 1), 2, "x", 1, 8).unwrap();
        assert_eq!(board.len().unwrap(), 2);
        handle.shutdown();
    }

    #[test]
    fn slow_mid_frame_write_is_not_treated_as_idle() {
        // Once a frame has started, poll-timeout expiries must continue
        // the read from the partial position instead of restarting the
        // frame (which would desync) or dropping the connection.
        let server = BoardServer::bind(SocketAddr::from(([127, 0, 0, 1], 0))).unwrap();
        let mut handle = server.spawn().unwrap();
        let mut s = TcpStream::connect(handle.addr()).unwrap();
        s.write_all(&1u32.to_le_bytes()).unwrap(); // length prefix only
        s.flush().unwrap();
        std::thread::sleep(Duration::from_millis(500)); // > 2 poll ticks
        s.write_all(&[op::GET_ROUND]).unwrap(); // frame body, late
        s.flush().unwrap();
        let resp = read_raw_frame(&mut s);
        assert_eq!(resp.first(), Some(&op::RESP_VALUE));
        handle.shutdown();
    }

    #[test]
    fn oversized_frame_gets_named_error_before_close() {
        let server = BoardServer::bind(SocketAddr::from(([127, 0, 0, 1], 0))).unwrap();
        let mut handle = server.spawn().unwrap();
        let mut s = TcpStream::connect(handle.addr()).unwrap();
        s.write_all(&u32::MAX.to_le_bytes()).unwrap(); // ~4GiB "frame"
        s.flush().unwrap();
        let resp = read_raw_frame(&mut s);
        assert_eq!(resp.first(), Some(&op::RESP_ERR));
        let mut cur = WireCursor::new(&resp[1..]);
        assert!(cur.str().unwrap().contains("exceeds cap"));
        handle.shutdown();
    }

    #[test]
    fn large_batch_is_chunked_under_the_frame_cap() {
        let server = BoardServer::bind(SocketAddr::from(([127, 0, 0, 1], 0))).unwrap();
        let mut handle = server.spawn().unwrap();
        let opts = TcpOptions { max_post_frame_bytes: 64, ..TcpOptions::default() };
        let t = TcpTransport::<u64>::connect(handle.addr(), opts).unwrap();
        let phase: Arc<str> = Arc::from("x");
        let n = t
            .post_stream(&mut (0..50u64).map(|m| PostRecord {
                from: RoleId::new("c", m as usize),
                phase: Arc::clone(&phase),
                message: m,
                elements: 1,
                bytes: 8,
            }))
            .unwrap();
        assert_eq!(n, 50);
        assert_eq!(t.len().unwrap(), 50);
        let all = t.read_from(0).unwrap();
        // Chunk boundaries must not reorder or drop records.
        for (i, p) in all.iter().enumerate() {
            assert_eq!(p.message, i as u64);
            assert_eq!(p.from, RoleId::new("c", i));
        }
        handle.shutdown();
    }

    #[test]
    fn server_survives_client_disconnect() {
        let (mut handle, board) = loopback::<u64>().unwrap();
        board.post(RoleId::new("c", 0), 7, "x", 1, 8).unwrap();
        drop(board);
        let board2: crate::BulletinBoard<u64> =
            crate::BulletinBoard::connect_tcp(handle.addr()).unwrap();
        assert_eq!(board2.len().unwrap(), 1);
        handle.shutdown();
    }
}
