//! Runtime integration tests: board round semantics, speak-once
//! discipline under committee workflows, and adversary statistics.

use rand::SeedableRng;
use yoso_runtime::{
    sortition, ActiveAttack, Adversary, Behavior, BulletinBoard, Committee, RoleId, SpeakOnce,
};

#[test]
fn rounds_partition_postings() {
    let board: BulletinBoard<u32> = BulletinBoard::new();
    for round in 0..3u64 {
        for i in 0..4 {
            board.post(RoleId::new("c", i), round as u32 * 10 + i as u32, "p", 1, 8).unwrap();
        }
        board.advance_round().unwrap();
    }
    assert_eq!(board.round().unwrap(), 3);
    for round in 0..3u64 {
        let posts = board.postings_in_round(round).unwrap();
        assert_eq!(posts.len(), 4);
        assert!(posts.iter().all(|p| p.round == round));
    }
    assert_eq!(board.len().unwrap(), 12);
}

#[test]
fn metered_only_board_counts_but_stores_nothing() {
    let board: BulletinBoard<u32> = BulletinBoard::metered_only();
    for i in 0..100 {
        board.post(RoleId::new("c", i), i as u32, "phase", 3, 24).unwrap();
    }
    assert_eq!(board.len().unwrap(), 0, "no audit log retained");
    assert_eq!(board.meter().phase("phase").elements, 300);
    assert_eq!(board.meter().phase("phase").messages, 100);
}

#[test]
fn committee_tokens_enforce_speak_once_per_role() {
    let committee = Committee::honest("c1", 5);
    let mut tokens = committee.tokens();
    let board: BulletinBoard<&str> = BulletinBoard::new();
    // Every role speaks exactly once.
    for token in &mut tokens {
        let role = token.speak().expect("first message allowed");
        board.post(role, "msg", "p", 1, 8).unwrap();
    }
    // No role can speak again.
    for token in &mut tokens {
        assert!(token.speak().is_err(), "second message must be rejected");
    }
    assert_eq!(board.len().unwrap(), 5);
}

#[test]
fn speak_once_is_per_role_not_per_committee() {
    let mut a = SpeakOnce::new(RoleId::new("c", 0));
    let mut b = SpeakOnce::new(RoleId::new("c", 1));
    assert!(a.speak().is_ok());
    assert!(b.speak().is_ok(), "other roles unaffected");
}

#[test]
fn adversary_sampling_statistics_match_configuration() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let adv = Adversary::active(4, ActiveAttack::Silent)
        .with_failstops(3, 2)
        .with_leaky(2);
    let mut malicious_positions = std::collections::HashSet::new();
    for _ in 0..100 {
        let c = adv.sample_committee(&mut rng, "x", 20);
        assert_eq!(c.corruption_count(), 4);
        assert_eq!(c.crashed_by(2).len(), 3);
        assert_eq!(
            c.behaviors.iter().filter(|b| matches!(b, Behavior::Leaky)).count(),
            2
        );
        for m in c.malicious() {
            malicious_positions.insert(m);
        }
    }
    // Random corruption: over 100 samples nearly every position is hit.
    assert!(malicious_positions.len() >= 15, "positions {malicious_positions:?}");
}

#[test]
fn failstop_participation_boundary() {
    let c = Committee::with_behaviors(
        "x",
        vec![Behavior::FailStop { crash_phase: 3 }, Behavior::Honest],
    );
    assert!(c.behavior(0).participates_at(2));
    assert!(!c.behavior(0).participates_at(3));
    assert!(c.behavior(1).participates_at(u64::MAX));
}

#[test]
fn sortition_committee_size_concentrates() {
    // Realized sizes concentrate around C with sd ≈ sqrt(C).
    let mut rng = rand::rngs::StdRng::seed_from_u64(6);
    let c_param = 5000.0;
    let mut sum = 0f64;
    let mut sq = 0f64;
    let trials = 400;
    for _ in 0..trials {
        let s = sortition::sample_committee(&mut rng, 2_000_000, 0.2, c_param).size as f64;
        sum += s;
        sq += s * s;
    }
    let mean = sum / trials as f64;
    let sd = (sq / trials as f64 - mean * mean).sqrt();
    assert!((mean - c_param).abs() < 30.0, "mean {mean}");
    assert!(sd < 3.0 * c_param.sqrt(), "sd {sd}");
}

#[test]
fn meter_phase_prefixes_aggregate() {
    let board: BulletinBoard<()> = BulletinBoard::new();
    board.post(RoleId::new("a", 0), (), "online/1-keydist", 5, 40).unwrap();
    board.post(RoleId::new("a", 1), (), "online/3-mult", 7, 56).unwrap();
    board.post(RoleId::new("a", 2), (), "offline/1-beaver", 11, 88).unwrap();
    assert_eq!(board.meter().phase_prefix("online").elements, 12);
    assert_eq!(board.meter().phase_prefix("offline").elements, 11);
    assert_eq!(board.meter().total().elements, 23);
    assert_eq!(board.meter().total().bytes, 184);
}
