//! Property tests for circuit structure invariants: layering,
//! batching coverage and evaluation consistency.

use proptest::prelude::*;
use yoso_field::{F61, PrimeField};
use yoso_circuit::{Circuit, CircuitBuilder, Gate, WireId};

#[derive(Debug, Clone)]
enum Op {
    Add(usize, usize),
    Sub(usize, usize),
    Mul(usize, usize),
    MulConst(usize, u64),
    Const(u64),
    Input(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<usize>(), any::<usize>()).prop_map(|(a, b)| Op::Add(a, b)),
        (any::<usize>(), any::<usize>()).prop_map(|(a, b)| Op::Sub(a, b)),
        (any::<usize>(), any::<usize>()).prop_map(|(a, b)| Op::Mul(a, b)),
        (any::<usize>(), any::<u64>()).prop_map(|(a, c)| Op::MulConst(a, c)),
        any::<u64>().prop_map(Op::Const),
        (0usize..3).prop_map(Op::Input),
    ]
}

fn build(ops: &[Op]) -> Circuit<F61> {
    let mut b = CircuitBuilder::<F61>::new();
    let seed = b.input(0);
    let mut wires: Vec<WireId> = vec![seed];
    for op in ops {
        let pick = |i: usize| wires[i % wires.len()];
        let w = match *op {
            Op::Add(a, c) => b.add(pick(a), pick(c)),
            Op::Sub(a, c) => b.sub(pick(a), pick(c)),
            Op::Mul(a, c) => b.mul(pick(a), pick(c)),
            Op::MulConst(a, c) => b.mul_const(pick(a), F61::from_u64(c)),
            Op::Const(c) => b.constant(F61::from_u64(c)),
            Op::Input(client) => b.input(client),
        };
        wires.push(w);
    }
    b.output(*wires.last().unwrap(), 0);
    b.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn mul_layers_partition_mul_gates(ops in prop::collection::vec(op_strategy(), 0..60)) {
        let c = build(&ops);
        let mut seen = std::collections::HashSet::new();
        for layer in c.mul_layers() {
            for w in layer {
                prop_assert!(matches!(c.gates()[w.0], Gate::Mul(_, _)));
                prop_assert!(seen.insert(w.0), "gate in two layers");
            }
        }
        let total_muls = c.gates().iter().filter(|g| matches!(g, Gate::Mul(_, _))).count();
        prop_assert_eq!(seen.len(), total_muls);
        prop_assert_eq!(c.mul_count(), total_muls);
    }

    #[test]
    fn layers_respect_dependencies(ops in prop::collection::vec(op_strategy(), 0..60)) {
        // A mul gate's layer must exceed the layer of every mul gate it
        // (transitively, through linear gates) depends on.
        let c = build(&ops);
        let mut depth = vec![0usize; c.gates().len()];
        for (w, gate) in c.gates().iter().enumerate() {
            depth[w] = match *gate {
                Gate::Input { .. } | Gate::Const(_) => 0,
                Gate::Add(a, b) | Gate::Sub(a, b) => depth[a.0].max(depth[b.0]),
                Gate::MulConst(a, _) => depth[a.0],
                Gate::Mul(a, b) => depth[a.0].max(depth[b.0]) + 1,
                Gate::Output(a, _) => depth[a.0],
            };
        }
        for (layer_idx, layer) in c.mul_layers().iter().enumerate() {
            for w in layer {
                prop_assert_eq!(depth[w.0], layer_idx + 1);
            }
        }
    }

    #[test]
    fn batching_covers_every_mul_exactly_once(
        ops in prop::collection::vec(op_strategy(), 0..60),
        k in 1usize..6,
    ) {
        let c = build(&ops);
        let batched = c.batched(k);
        let mut seen = std::collections::HashSet::new();
        for batch in &batched.mul_batches {
            prop_assert!(batch.gates.len() <= k);
            prop_assert!(!batch.gates.is_empty());
            for w in &batch.gates {
                prop_assert!(seen.insert(w.0));
            }
        }
        prop_assert_eq!(seen.len(), c.mul_count());
        // Input batches cover every input wire exactly once.
        let mut in_seen = std::collections::HashSet::new();
        for batch in &batched.input_batches {
            for w in &batch.wires {
                prop_assert!(in_seen.insert(w.0));
            }
        }
        prop_assert_eq!(in_seen.len(), c.input_count());
    }

    #[test]
    fn evaluation_is_linear_in_single_input(
        ops in prop::collection::vec(op_strategy(), 0..20),
        x in any::<u64>(),
        y in any::<u64>(),
    ) {
        // evaluate_wires is a function: same inputs → same wires; and
        // the output gate mirrors its source wire.
        let c = build(&ops);
        let make_inputs = |v: u64| -> Vec<Vec<F61>> {
            c.inputs_per_client()
                .iter()
                .map(|ws| ws.iter().map(|_| F61::from_u64(v)).collect())
                .collect()
        };
        let w1 = c.evaluate_wires(&make_inputs(x)).unwrap();
        let w2 = c.evaluate_wires(&make_inputs(x)).unwrap();
        prop_assert_eq!(&w1, &w2);
        let _ = c.evaluate_wires(&make_inputs(y)).unwrap();
        for &(w, _) in c.outputs() {
            if let Gate::Output(src, _) = c.gates()[w.0] {
                prop_assert_eq!(w1[w.0], w1[src.0]);
            }
        }
    }

    #[test]
    fn serialization_preserves_structure(ops in prop::collection::vec(op_strategy(), 0..30)) {
        // Round-trip through the raw gate list (the serde surface).
        let c = build(&ops);
        let rebuilt = Circuit::from_gates(c.gates().to_vec()).unwrap();
        prop_assert_eq!(c, rebuilt);
    }
}
