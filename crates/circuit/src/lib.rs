//! Arithmetic circuit intermediate representation for packed MPC.
//!
//! The MPC protocol evaluates layered arithmetic circuits over a prime
//! field. This crate provides:
//!
//! - [`Circuit`] / [`CircuitBuilder`]: an SSA-style gate list (each
//!   gate defines the wire with its own id) with input, addition,
//!   multiplication, constant and output gates.
//! - Reference evaluation ([`Circuit::evaluate`]) used as ground truth
//!   in every protocol test.
//! - Multiplication-layer analysis and *k-batching*
//!   ([`Circuit::batched`]): groups of `k` multiplication gates at the
//!   same depth that the packed protocol processes with a single packed
//!   sharing, plus per-client input batches — exactly the batching the
//!   paper's offline Step 4 and online multiplication step operate on.
//! - [`generators`]: parameterized circuit families used by the
//!   examples, tests and benchmarks (wide layered circuits, inner
//!   products, polynomial evaluation, statistics, MiMC-style keyed
//!   permutations).
//!
//! # Example
//!
//! ```rust
//! use yoso_circuit::{Circuit, CircuitBuilder};
//! use yoso_field::F61;
//!
//! // (x + y) * y for client 0, output to client 0.
//! let mut b = CircuitBuilder::<F61>::new();
//! let x = b.input(0);
//! let y = b.input(0);
//! let s = b.add(x, y);
//! let p = b.mul(s, y);
//! b.output(p, 0);
//! let circuit = b.build()?;
//!
//! let out = circuit.evaluate(&[vec![F61::from(2u64), F61::from(3u64)]])?;
//! assert_eq!(out[0], vec![F61::from(15u64)]);
//! # Ok::<(), yoso_circuit::CircuitError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generators;

use serde::{Deserialize, Serialize};

use yoso_field::PrimeField;

/// Identifier of a wire (the gate that defines it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct WireId(pub usize);

/// A gate. Every gate except `Output` defines the wire whose id equals
/// the gate's position in the gate list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(bound = "")]
pub enum Gate<F: PrimeField> {
    /// An input wire supplied by `client`.
    Input {
        /// 0-based client index.
        client: usize,
    },
    /// A public constant.
    Const(F),
    /// Addition of two wires (free in the protocol).
    Add(WireId, WireId),
    /// Subtraction `a − b` (free).
    Sub(WireId, WireId),
    /// Multiplication by a public constant (free).
    MulConst(WireId, F),
    /// Multiplication of two wires (requires communication).
    Mul(WireId, WireId),
    /// Marks wire `0` as an output for `client`. Defines a passthrough
    /// wire carrying the same value.
    Output(WireId, usize),
}

/// Errors produced by circuit construction and evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CircuitError {
    /// A gate referenced a wire that is not defined before it.
    ForwardReference {
        /// Position of the offending gate.
        gate: usize,
        /// The referenced wire.
        wire: WireId,
    },
    /// The circuit has no output gates.
    NoOutputs,
    /// Evaluation received the wrong number of clients or inputs.
    InputMismatch {
        /// Client index (or `usize::MAX` for a client-count mismatch).
        client: usize,
        /// Inputs supplied.
        got: usize,
        /// Inputs expected.
        expected: usize,
    },
}

impl std::fmt::Display for CircuitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CircuitError::ForwardReference { gate, wire } => {
                write!(f, "gate {gate} references undefined wire {}", wire.0)
            }
            CircuitError::NoOutputs => write!(f, "circuit has no output gates"),
            CircuitError::InputMismatch { client, got, expected } => {
                write!(f, "input mismatch for client {client}: got {got}, expected {expected}")
            }
        }
    }
}

impl std::error::Error for CircuitError {}

/// A validated arithmetic circuit.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(bound = "")]
pub struct Circuit<F: PrimeField> {
    gates: Vec<Gate<F>>,
    /// Number of clients (max client index + 1 over inputs and outputs).
    clients: usize,
    /// Input wire ids per client, in gate order.
    inputs_per_client: Vec<Vec<WireId>>,
    /// Output (wire, client) pairs in gate order.
    outputs: Vec<(WireId, usize)>,
    /// Multiplicative depth of every wire.
    depth: Vec<usize>,
    /// Mul gate ids grouped by multiplicative depth (1-based depth;
    /// index 0 holds depth-1 muls).
    mul_layers: Vec<Vec<WireId>>,
}

impl<F: PrimeField> Circuit<F> {
    /// The gate list.
    pub fn gates(&self) -> &[Gate<F>] {
        &self.gates
    }

    /// Number of clients.
    pub fn clients(&self) -> usize {
        self.clients
    }

    /// Input wires for each client.
    pub fn inputs_per_client(&self) -> &[Vec<WireId>] {
        &self.inputs_per_client
    }

    /// Output (wire, client) pairs.
    pub fn outputs(&self) -> &[(WireId, usize)] {
        &self.outputs
    }

    /// Total number of wires (gates).
    pub fn wire_count(&self) -> usize {
        self.gates.len()
    }

    /// Number of multiplication gates.
    pub fn mul_count(&self) -> usize {
        self.mul_layers.iter().map(Vec::len).sum()
    }

    /// Number of input gates across all clients.
    pub fn input_count(&self) -> usize {
        self.inputs_per_client.iter().map(Vec::len).sum()
    }

    /// Multiplication gates grouped by multiplicative depth.
    pub fn mul_layers(&self) -> &[Vec<WireId>] {
        &self.mul_layers
    }

    /// Multiplicative depth of the circuit.
    pub fn mul_depth(&self) -> usize {
        self.mul_layers.len()
    }

    /// Multiplicative depth of every wire: `depths()[w]` mul layers
    /// must complete before wire `w`'s value is available (0 for
    /// inputs, constants, and wires linear in the inputs). A mul gate
    /// at depth `d` sits in `mul_layers()[d - 1]`.
    pub fn depths(&self) -> &[usize] {
        &self.depth
    }

    /// Evaluates the circuit on cleartext inputs: `inputs[c]` are
    /// client `c`'s values in input-gate order. Returns each client's
    /// outputs.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InputMismatch`] if the inputs do not
    /// match the circuit's input layout.
    pub fn evaluate(&self, inputs: &[Vec<F>]) -> Result<Vec<Vec<F>>, CircuitError> {
        if inputs.len() != self.clients {
            return Err(CircuitError::InputMismatch {
                client: usize::MAX,
                got: inputs.len(),
                expected: self.clients,
            });
        }
        for (c, (got, expected)) in inputs.iter().zip(&self.inputs_per_client).enumerate() {
            if got.len() != expected.len() {
                return Err(CircuitError::InputMismatch {
                    client: c,
                    got: got.len(),
                    expected: expected.len(),
                });
            }
        }
        let mut values = vec![F::ZERO; self.gates.len()];
        let mut next_input = vec![0usize; self.clients];
        for (i, gate) in self.gates.iter().enumerate() {
            values[i] = match *gate {
                Gate::Input { client } => {
                    let v = inputs[client][next_input[client]];
                    next_input[client] += 1;
                    v
                }
                Gate::Const(c) => c,
                Gate::Add(a, b) => values[a.0] + values[b.0],
                Gate::Sub(a, b) => values[a.0] - values[b.0],
                Gate::MulConst(a, c) => values[a.0] * c,
                Gate::Mul(a, b) => values[a.0] * values[b.0],
                Gate::Output(a, _) => values[a.0],
            };
        }
        let mut outputs = vec![Vec::new(); self.clients];
        for &(w, c) in &self.outputs {
            outputs[c].push(values[w.0]);
        }
        Ok(outputs)
    }

    /// Evaluates and also returns the value on every wire (used by the
    /// protocol tests to check the `v = μ + λ` invariant wire by wire).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::evaluate`].
    pub fn evaluate_wires(&self, inputs: &[Vec<F>]) -> Result<Vec<F>, CircuitError> {
        // Re-run evaluation, retaining all wire values.
        if inputs.len() != self.clients {
            return Err(CircuitError::InputMismatch {
                client: usize::MAX,
                got: inputs.len(),
                expected: self.clients,
            });
        }
        let mut values = vec![F::ZERO; self.gates.len()];
        let mut next_input = vec![0usize; self.clients];
        for (i, gate) in self.gates.iter().enumerate() {
            values[i] = match *gate {
                Gate::Input { client } => {
                    let idx = next_input[client];
                    if idx >= inputs[client].len() {
                        return Err(CircuitError::InputMismatch {
                            client,
                            got: inputs[client].len(),
                            expected: self.inputs_per_client[client].len(),
                        });
                    }
                    next_input[client] += 1;
                    inputs[client][idx]
                }
                Gate::Const(c) => c,
                Gate::Add(a, b) => values[a.0] + values[b.0],
                Gate::Sub(a, b) => values[a.0] - values[b.0],
                Gate::MulConst(a, c) => values[a.0] * c,
                Gate::Mul(a, b) => values[a.0] * values[b.0],
                Gate::Output(a, _) => values[a.0],
            };
        }
        Ok(values)
    }

    /// Renders the circuit as a Graphviz `dot` digraph (for debugging
    /// and documentation).
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("digraph circuit {\n  rankdir=TB;\n");
        for (i, gate) in self.gates.iter().enumerate() {
            let (label, shape) = match gate {
                Gate::Input { client } => (format!("in c{client}"), "invhouse"),
                Gate::Const(c) => (format!("const {c}"), "box"),
                Gate::Add(_, _) => ("+".to_string(), "circle"),
                Gate::Sub(_, _) => ("−".to_string(), "circle"),
                Gate::MulConst(_, c) => (format!("×{c}"), "circle"),
                Gate::Mul(_, _) => ("×".to_string(), "doublecircle"),
                Gate::Output(_, client) => (format!("out c{client}"), "house"),
            };
            let _ = writeln!(out, "  w{i} [label=\"{label}\", shape={shape}];");
            match gate {
                Gate::Add(a, b) | Gate::Sub(a, b) | Gate::Mul(a, b) => {
                    let _ = writeln!(out, "  w{} -> w{i};\n  w{} -> w{i};", a.0, b.0);
                }
                Gate::MulConst(a, _) | Gate::Output(a, _) => {
                    let _ = writeln!(out, "  w{} -> w{i};", a.0);
                }
                Gate::Input { .. } | Gate::Const(_) => {}
            }
        }
        out.push_str("}\n");
        out
    }

    /// Batches the circuit for packing factor `k`: multiplication gates
    /// are grouped per layer into chunks of at most `k`, and each
    /// client's input wires into chunks of at most `k`.
    ///
    /// Every emitted batch is non-empty and at most `k` wide: a `k`
    /// larger than a layer (or input list) yields one batch of the
    /// full width, never a padded or empty one, and a client with no
    /// input wires (output-only clients exist in the layout after
    /// [`CircuitBuilder::build`] pads `inputs_per_client`) contributes
    /// no input batch at all. The engine sizes a `PackedSharing` per
    /// distinct batch width, so an empty batch would be degenerate —
    /// both properties are pinned by regression tests.
    pub fn batched(&self, k: usize) -> BatchedCircuit<F> {
        assert!(k >= 1, "packing factor must be at least 1");
        let input_batches: Vec<InputBatch> = self
            .inputs_per_client
            .iter()
            .enumerate()
            .flat_map(|(client, wires)| {
                wires
                    .chunks(k)
                    .filter(|chunk| !chunk.is_empty())
                    .map(move |chunk| InputBatch { client, wires: chunk.to_vec() })
            })
            .collect();
        let mul_batches: Vec<MulBatch> = self
            .mul_layers
            .iter()
            .enumerate()
            .flat_map(|(layer, gates)| {
                gates
                    .chunks(k)
                    .filter(|chunk| !chunk.is_empty())
                    .map(move |chunk| MulBatch { layer, gates: chunk.to_vec() })
            })
            .collect();
        debug_assert!(
            input_batches.iter().all(|b| !b.wires.is_empty() && b.wires.len() <= k),
            "input batches must be non-empty and at most k wide"
        );
        debug_assert!(
            mul_batches.iter().all(|b| !b.gates.is_empty() && b.gates.len() <= k),
            "mul batches must be non-empty and at most k wide"
        );
        BatchedCircuit { circuit: self.clone(), k, input_batches, mul_batches }
    }
}

/// A batch of up to `k` input wires belonging to one client.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InputBatch {
    /// The supplying client.
    pub client: usize,
    /// The wires in the batch.
    pub wires: Vec<WireId>,
}

/// A batch of up to `k` multiplication gates at one layer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MulBatch {
    /// 0-based multiplicative layer.
    pub layer: usize,
    /// The gate (= output wire) ids in the batch.
    pub gates: Vec<WireId>,
}

impl MulBatch {
    /// The left input wires of the batch's gates.
    pub fn left_wires<F: PrimeField>(&self, circuit: &Circuit<F>) -> Vec<WireId> {
        self.gates
            .iter()
            .map(|&g| match circuit.gates()[g.0] {
                Gate::Mul(a, _) => a,
                _ => unreachable!("mul batch contains non-mul gate"),
            })
            .collect()
    }

    /// The right input wires of the batch's gates.
    pub fn right_wires<F: PrimeField>(&self, circuit: &Circuit<F>) -> Vec<WireId> {
        self.gates
            .iter()
            .map(|&g| match circuit.gates()[g.0] {
                Gate::Mul(_, b) => b,
                _ => unreachable!("mul batch contains non-mul gate"),
            })
            .collect()
    }
}

/// A circuit together with its packing-factor-`k` batching.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(bound = "")]
pub struct BatchedCircuit<F: PrimeField> {
    /// The underlying circuit.
    pub circuit: Circuit<F>,
    /// The packing factor.
    pub k: usize,
    /// Per-client input batches.
    pub input_batches: Vec<InputBatch>,
    /// Per-layer multiplication batches.
    pub mul_batches: Vec<MulBatch>,
}

/// Builder for [`Circuit`].
#[derive(Debug, Clone, Default)]
pub struct CircuitBuilder<F: PrimeField> {
    gates: Vec<Gate<F>>,
    outputs: Vec<(WireId, usize)>,
}

impl<F: PrimeField> CircuitBuilder<F> {
    /// Creates an empty builder.
    pub fn new() -> Self {
        CircuitBuilder { gates: Vec::new(), outputs: Vec::new() }
    }

    fn push(&mut self, gate: Gate<F>) -> WireId {
        self.gates.push(gate);
        WireId(self.gates.len() - 1)
    }

    /// Adds an input gate for `client`.
    pub fn input(&mut self, client: usize) -> WireId {
        self.push(Gate::Input { client })
    }

    /// Adds a constant gate.
    pub fn constant(&mut self, c: F) -> WireId {
        self.push(Gate::Const(c))
    }

    /// Adds an addition gate.
    pub fn add(&mut self, a: WireId, b: WireId) -> WireId {
        self.push(Gate::Add(a, b))
    }

    /// Adds a subtraction gate `a − b`.
    pub fn sub(&mut self, a: WireId, b: WireId) -> WireId {
        self.push(Gate::Sub(a, b))
    }

    /// Adds a constant-multiplication gate.
    pub fn mul_const(&mut self, a: WireId, c: F) -> WireId {
        self.push(Gate::MulConst(a, c))
    }

    /// Adds a multiplication gate.
    pub fn mul(&mut self, a: WireId, b: WireId) -> WireId {
        self.push(Gate::Mul(a, b))
    }

    /// Marks `wire` as an output for `client`.
    pub fn output(&mut self, wire: WireId, client: usize) -> WireId {
        let w = self.push(Gate::Output(wire, client));
        self.outputs.push((w, client));
        w
    }

    /// Validates and freezes the circuit.
    ///
    /// # Errors
    ///
    /// - [`CircuitError::ForwardReference`] if a gate uses a wire
    ///   defined later (the builder API cannot produce this, but
    ///   deserialized gate lists can).
    /// - [`CircuitError::NoOutputs`] if no output gate exists.
    pub fn build(self) -> Result<Circuit<F>, CircuitError> {
        Circuit::from_gates(self.gates)
    }
}

impl<F: PrimeField> Circuit<F> {
    /// Validates a raw gate list into a circuit.
    ///
    /// # Errors
    ///
    /// See [`CircuitBuilder::build`].
    pub fn from_gates(gates: Vec<Gate<F>>) -> Result<Self, CircuitError> {
        let check = |gate: usize, wire: WireId| {
            if wire.0 >= gate {
                Err(CircuitError::ForwardReference { gate, wire })
            } else {
                Ok(())
            }
        };
        let mut clients = 0usize;
        let mut inputs_per_client: Vec<Vec<WireId>> = Vec::new();
        let mut outputs = Vec::new();
        let mut depth = vec![0usize; gates.len()];
        let mut mul_layers: Vec<Vec<WireId>> = Vec::new();

        for (i, gate) in gates.iter().enumerate() {
            match *gate {
                Gate::Input { client } => {
                    clients = clients.max(client + 1);
                    if inputs_per_client.len() <= client {
                        inputs_per_client.resize(client + 1, Vec::new());
                    }
                    inputs_per_client[client].push(WireId(i));
                    depth[i] = 0;
                }
                Gate::Const(_) => depth[i] = 0,
                Gate::Add(a, b) | Gate::Sub(a, b) => {
                    check(i, a)?;
                    check(i, b)?;
                    depth[i] = depth[a.0].max(depth[b.0]);
                }
                Gate::MulConst(a, _) => {
                    check(i, a)?;
                    depth[i] = depth[a.0];
                }
                Gate::Mul(a, b) => {
                    check(i, a)?;
                    check(i, b)?;
                    depth[i] = depth[a.0].max(depth[b.0]) + 1;
                    let layer = depth[i] - 1;
                    if mul_layers.len() <= layer {
                        mul_layers.resize(layer + 1, Vec::new());
                    }
                    mul_layers[layer].push(WireId(i));
                }
                Gate::Output(a, client) => {
                    check(i, a)?;
                    clients = clients.max(client + 1);
                    depth[i] = depth[a.0];
                    outputs.push((WireId(i), client));
                }
            }
        }
        if outputs.is_empty() {
            return Err(CircuitError::NoOutputs);
        }
        inputs_per_client.resize(clients, Vec::new());
        Ok(Circuit { gates, clients, inputs_per_client, outputs, depth, mul_layers })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yoso_field::F61;

    fn f(v: u64) -> F61 {
        F61::from(v)
    }

    #[test]
    fn builder_and_evaluation() {
        let mut b = CircuitBuilder::<F61>::new();
        let x = b.input(0);
        let y = b.input(1);
        let c = b.constant(f(10));
        let s = b.add(x, y);
        let d = b.sub(s, c);
        let m = b.mul_const(d, f(2));
        let p = b.mul(m, y);
        b.output(p, 0);
        let circ = b.build().unwrap();
        // ((3 + 9 - 10) * 2) * 9 = 36
        let out = circ.evaluate(&[vec![f(3)], vec![f(9)]]).unwrap();
        assert_eq!(out[0], vec![f(36)]);
        assert_eq!(circ.clients(), 2);
        assert_eq!(circ.mul_count(), 1);
        assert_eq!(circ.mul_depth(), 1);
    }

    #[test]
    fn depth_tracking() {
        let mut b = CircuitBuilder::<F61>::new();
        let x = b.input(0);
        let m1 = b.mul(x, x); // depth 1
        let m2 = b.mul(m1, x); // depth 2
        let a = b.add(m2, m1); // depth 2 (additive)
        let m3 = b.mul(a, m1); // depth 3
        b.output(m3, 0);
        let circ = b.build().unwrap();
        assert_eq!(circ.mul_depth(), 3);
        assert_eq!(circ.mul_layers()[0], vec![m1]);
        assert_eq!(circ.mul_layers()[1], vec![m2]);
        assert_eq!(circ.mul_layers()[2], vec![m3]);
        // x = 2: m1 = 4, m2 = 8, a = 12, m3 = 48
        let out = circ.evaluate(&[vec![f(2)]]).unwrap();
        assert_eq!(out[0], vec![f(48)]);
    }

    #[test]
    fn no_outputs_rejected() {
        let mut b = CircuitBuilder::<F61>::new();
        let x = b.input(0);
        b.add(x, x);
        assert_eq!(b.build().unwrap_err(), CircuitError::NoOutputs);
    }

    #[test]
    fn forward_reference_rejected() {
        let gates = vec![Gate::<F61>::Add(WireId(1), WireId(2)), Gate::Input { client: 0 }];
        assert!(matches!(
            Circuit::from_gates(gates),
            Err(CircuitError::ForwardReference { gate: 0, .. })
        ));
    }

    #[test]
    fn input_mismatch_detected() {
        let mut b = CircuitBuilder::<F61>::new();
        let x = b.input(0);
        b.output(x, 0);
        let circ = b.build().unwrap();
        assert!(circ.evaluate(&[]).is_err());
        assert!(circ.evaluate(&[vec![]]).is_err());
        assert!(circ.evaluate(&[vec![f(1), f(2)]]).is_err());
    }

    #[test]
    fn batching_groups_by_layer_and_client() {
        let mut b = CircuitBuilder::<F61>::new();
        let xs: Vec<WireId> = (0..5).map(|_| b.input(0)).collect();
        let ys: Vec<WireId> = (0..3).map(|_| b.input(1)).collect();
        // 5 muls at layer 1.
        let ms: Vec<WireId> = xs.iter().map(|&x| b.mul(x, ys[0])).collect();
        // 2 muls at layer 2.
        let t1 = b.mul(ms[0], ms[1]);
        let t2 = b.mul(ms[2], ms[3]);
        let s = b.add(t1, t2);
        b.output(s, 0);
        b.output(ys[2], 1);
        let circ = b.build().unwrap();
        let batched = circ.batched(2);
        // Inputs: client 0 has 5 wires -> 3 batches; client 1 has 3 -> 2.
        assert_eq!(batched.input_batches.len(), 5);
        // Muls: layer 1 has 5 -> 3 batches; layer 2 has 2 -> 1 batch.
        assert_eq!(batched.mul_batches.len(), 4);
        let first = &batched.mul_batches[0];
        assert_eq!(first.layer, 0);
        assert_eq!(first.left_wires(&circ), vec![xs[0], xs[1]]);
        assert_eq!(first.right_wires(&circ), vec![ys[0], ys[0]]);
    }

    #[test]
    fn batching_with_k_beyond_layer_width_stays_non_degenerate() {
        // Layer widths 3 and 1, input lists 3 and 1 — batched with
        // k = 8, far wider than anything in the circuit.
        let mut b = CircuitBuilder::<F61>::new();
        let xs: Vec<WireId> = (0..3).map(|_| b.input(0)).collect();
        let y = b.input(1);
        let ms: Vec<WireId> = xs.iter().map(|&x| b.mul(x, y)).collect();
        let top = b.mul(ms[0], ms[1]);
        b.output(top, 0);
        let circ = b.build().unwrap();
        let batched = circ.batched(8);
        // One batch per client and per layer, at the full (sub-k) width.
        assert_eq!(batched.input_batches.len(), 2);
        assert_eq!(batched.input_batches[0].wires.len(), 3);
        assert_eq!(batched.input_batches[1].wires.len(), 1);
        assert_eq!(batched.mul_batches.len(), 2);
        assert_eq!(batched.mul_batches[0].gates.len(), 3);
        assert_eq!(batched.mul_batches[1].gates.len(), 1);
        for batch in &batched.input_batches {
            assert!(!batch.wires.is_empty() && batch.wires.len() <= 8);
        }
        for batch in &batched.mul_batches {
            assert!(!batch.gates.is_empty() && batch.gates.len() <= 8);
        }
    }

    #[test]
    fn output_only_client_produces_no_input_batch() {
        // Client 2 only receives an output; clients 0..=2 exist in the
        // layout but client 2's input list is empty. No batch may be
        // emitted for it, at any k.
        let mut b = CircuitBuilder::<F61>::new();
        let x = b.input(0);
        let y = b.input(1);
        let m = b.mul(x, y);
        b.output(m, 2);
        let circ = b.build().unwrap();
        assert_eq!(circ.clients(), 3);
        assert!(circ.inputs_per_client()[2].is_empty());
        for k in [1usize, 2, 7] {
            let batched = circ.batched(k);
            assert!(
                batched.input_batches.iter().all(|b| b.client != 2),
                "k={k}: zero-input client must not appear in input batches"
            );
            assert!(batched.input_batches.iter().all(|b| !b.wires.is_empty()));
            // The present clients are still fully covered, in order.
            let covered: Vec<WireId> =
                batched.input_batches.iter().flat_map(|b| b.wires.iter().copied()).collect();
            assert_eq!(covered, vec![x, y], "k={k}");
        }
    }

    #[test]
    fn batching_covers_every_mul_exactly_once_at_any_k() {
        let mut b = CircuitBuilder::<F61>::new();
        let xs: Vec<WireId> = (0..7).map(|_| b.input(0)).collect();
        let ms: Vec<WireId> = xs.windows(2).map(|w| b.mul(w[0], w[1])).collect();
        let top = b.mul(ms[0], ms[5]);
        b.output(top, 0);
        let circ = b.build().unwrap();
        let mut expected: Vec<WireId> =
            circ.mul_layers().iter().flat_map(|l| l.iter().copied()).collect();
        expected.sort_unstable();
        for k in [1usize, 2, 3, 5, 100] {
            let batched = circ.batched(k);
            let mut covered: Vec<WireId> =
                batched.mul_batches.iter().flat_map(|b| b.gates.iter().copied()).collect();
            covered.sort_unstable();
            assert_eq!(covered, expected, "k={k}: every mul exactly once");
            assert!(batched.mul_batches.iter().all(|b| !b.gates.is_empty() && b.gates.len() <= k));
        }
    }

    #[test]
    fn dot_export_mentions_every_wire() {
        let mut b = CircuitBuilder::<F61>::new();
        let x = b.input(0);
        let c = b.constant(f(3));
        let s = b.add(x, c);
        let m = b.mul(s, x);
        b.output(m, 0);
        let circ = b.build().unwrap();
        let dot = circ.to_dot();
        assert!(dot.starts_with("digraph circuit {"));
        for i in 0..circ.wire_count() {
            assert!(dot.contains(&format!("w{i} ")), "wire {i} missing");
        }
        assert!(dot.contains("doublecircle"), "mul gate styled");
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn evaluate_wires_matches_outputs() {
        let mut b = CircuitBuilder::<F61>::new();
        let x = b.input(0);
        let y = b.input(0);
        let m = b.mul(x, y);
        let o = b.output(m, 0);
        let circ = b.build().unwrap();
        let wires = circ.evaluate_wires(&[vec![f(6), f(7)]]).unwrap();
        assert_eq!(wires[m.0], f(42));
        assert_eq!(wires[o.0], f(42));
    }
}
