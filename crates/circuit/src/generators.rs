//! Parameterized circuit families for examples, tests and benchmarks.

use rand::Rng;

use yoso_field::PrimeField;

use crate::{Circuit, CircuitBuilder, CircuitError, WireId};

/// A wide layered circuit: `width` parallel multiplication chains of
/// `depth` layers, all inputs from `clients` round-robin, one output
/// per chain to client 0.
///
/// This is the paper's canonical workload shape — "circuit width
/// `O(n)`" — used by the communication experiments: at packing factor
/// `k`, each layer forms `⌈width/k⌉` multiplication batches.
///
/// # Errors
///
/// Propagates [`CircuitError`] (impossible for valid parameters).
pub fn wide_layered<F: PrimeField>(
    width: usize,
    depth: usize,
    clients: usize,
) -> Result<Circuit<F>, CircuitError> {
    assert!(width >= 1 && depth >= 1 && clients >= 1, "degenerate circuit parameters");
    let mut b = CircuitBuilder::new();
    // Two input rows so the first layer has distinct operands.
    let row_a: Vec<WireId> = (0..width).map(|i| b.input(i % clients)).collect();
    let row_b: Vec<WireId> = (0..width).map(|i| b.input(i % clients)).collect();
    let mut cur: Vec<WireId> = row_a
        .iter()
        .zip(&row_b)
        .map(|(&a, &bb)| b.mul(a, bb))
        .collect();
    for _ in 1..depth {
        // Mix neighbours additively (free) then multiply pairwise with a
        // rotation, keeping the layer width constant.
        let mixed: Vec<WireId> = (0..width)
            .map(|i| b.add(cur[i], cur[(i + 1) % width]))
            .collect();
        cur = (0..width).map(|i| b.mul(mixed[i], cur[(i + width / 2) % width])).collect();
    }
    for &w in &cur {
        b.output(w, 0);
    }
    b.build()
}

/// Inner product of two `len`-dimensional vectors, one per client;
/// the scalar result goes to both clients.
///
/// # Errors
///
/// Propagates [`CircuitError`].
pub fn inner_product<F: PrimeField>(len: usize) -> Result<Circuit<F>, CircuitError> {
    assert!(len >= 1, "empty inner product");
    let mut b = CircuitBuilder::new();
    let xs: Vec<WireId> = (0..len).map(|_| b.input(0)).collect();
    let ys: Vec<WireId> = (0..len).map(|_| b.input(1)).collect();
    let mut acc = b.mul(xs[0], ys[0]);
    for i in 1..len {
        let p = b.mul(xs[i], ys[i]);
        acc = b.add(acc, p);
    }
    b.output(acc, 0);
    b.output(acc, 1);
    b.build()
}

/// Evaluates the polynomial with client 1's secret coefficients
/// `a_0 … a_deg` at client 0's secret point `x`; the value goes to
/// client 0. (Horner: multiplicative depth = `deg`.)
///
/// # Errors
///
/// Propagates [`CircuitError`].
pub fn poly_eval<F: PrimeField>(deg: usize) -> Result<Circuit<F>, CircuitError> {
    let mut b = CircuitBuilder::new();
    let x = b.input(0);
    let coeffs: Vec<WireId> = (0..=deg).map(|_| b.input(1)).collect();
    let mut acc = coeffs[deg];
    for i in (0..deg).rev() {
        let t = b.mul(acc, x);
        acc = b.add(t, coeffs[i]);
    }
    b.output(acc, 0);
    b.build()
}

/// Federated statistics: `parties` clients each contribute `per_party`
/// values; the circuit outputs (to client 0) the sum and the sum of
/// squares — enough for mean and variance with public counts.
///
/// # Errors
///
/// Propagates [`CircuitError`].
pub fn federated_stats<F: PrimeField>(
    parties: usize,
    per_party: usize,
) -> Result<Circuit<F>, CircuitError> {
    assert!(parties >= 1 && per_party >= 1, "degenerate statistics circuit");
    let mut b = CircuitBuilder::new();
    let mut sum: Option<WireId> = None;
    let mut sq_sum: Option<WireId> = None;
    for c in 0..parties {
        for _ in 0..per_party {
            let x = b.input(c);
            let sq = b.mul(x, x);
            sum = Some(match sum {
                Some(s) => b.add(s, x),
                None => x,
            });
            sq_sum = Some(match sq_sum {
                Some(s) => b.add(s, sq),
                None => sq,
            });
        }
    }
    b.output(sum.unwrap(), 0);
    b.output(sq_sum.unwrap(), 0);
    b.build()
}

/// A MiMC-style keyed permutation: `rounds` rounds of
/// `x ← (x + key + rc_i)³` with public round constants, computing a
/// shared PRF-style value from client 0's input and client 1's key.
/// Cubing costs two multiplications per round (depth `2·rounds`).
///
/// # Errors
///
/// Propagates [`CircuitError`].
pub fn mimc<F: PrimeField, R: Rng + ?Sized>(
    rng: &mut R,
    rounds: usize,
) -> Result<Circuit<F>, CircuitError> {
    assert!(rounds >= 1, "need at least one round");
    let mut b = CircuitBuilder::new();
    let mut x = b.input(0);
    let key = b.input(1);
    for _ in 0..rounds {
        let rc = b.constant(F::random(rng));
        let t0 = b.add(x, key);
        let t = b.add(t0, rc);
        let t2 = b.mul(t, t);
        x = b.mul(t2, t);
    }
    let fin = b.add(x, key);
    b.output(fin, 0);
    b.output(fin, 1);
    b.build()
}

/// A private weighted-average circuit: client `i` contributes a value
/// and a weight; the outputs (to every client) are `Σ wᵢ·xᵢ` and
/// `Σ wᵢ` (the caller divides in the clear).
///
/// # Errors
///
/// Propagates [`CircuitError`].
pub fn weighted_average<F: PrimeField>(parties: usize) -> Result<Circuit<F>, CircuitError> {
    assert!(parties >= 1, "no parties");
    let mut b = CircuitBuilder::new();
    let mut num: Option<WireId> = None;
    let mut den: Option<WireId> = None;
    for c in 0..parties {
        let x = b.input(c);
        let w = b.input(c);
        let wx = b.mul(w, x);
        num = Some(match num {
            Some(s) => b.add(s, wx),
            None => wx,
        });
        den = Some(match den {
            Some(s) => b.add(s, w),
            None => w,
        });
    }
    let (num, den) = (num.unwrap(), den.unwrap());
    for c in 0..parties {
        b.output(num, c);
        b.output(den, c);
    }
    b.build()
}

/// Matrix multiplication: client 0 holds an `m×m` matrix `A`, client 1
/// holds `B`; client 0 receives `A·B` (row-major inputs and outputs).
/// Width `m²` per layer — a natural "wide circuit" workload.
///
/// # Errors
///
/// Propagates [`CircuitError`].
pub fn matmul<F: PrimeField>(m: usize) -> Result<Circuit<F>, CircuitError> {
    assert!(m >= 1, "empty matrix");
    let mut b = CircuitBuilder::new();
    let a_in: Vec<WireId> = (0..m * m).map(|_| b.input(0)).collect();
    let b_in: Vec<WireId> = (0..m * m).map(|_| b.input(1)).collect();
    for i in 0..m {
        for j in 0..m {
            let mut acc: Option<WireId> = None;
            for l in 0..m {
                let p = b.mul(a_in[i * m + l], b_in[l * m + j]);
                acc = Some(match acc {
                    None => p,
                    Some(s) => b.add(s, p),
                });
            }
            b.output(acc.unwrap(), 0);
        }
    }
    b.build()
}

/// A private set-membership indicator via polynomial evaluation:
/// client 1's set of `set_size` elements is encoded as the roots of a
/// monic polynomial whose coefficients are its inputs; the circuit
/// evaluates it at client 0's element. Output 0 ⟺ member. (Horner;
/// depth `set_size`.)
///
/// # Errors
///
/// Propagates [`CircuitError`].
pub fn set_membership<F: PrimeField>(set_size: usize) -> Result<Circuit<F>, CircuitError> {
    assert!(set_size >= 1, "empty set");
    let mut b = CircuitBuilder::new();
    let x = b.input(0);
    // Monic polynomial: coefficients a_0 … a_{set_size−1}, leading 1.
    let coeffs: Vec<WireId> = (0..set_size).map(|_| b.input(1)).collect();
    let mut acc = b.constant(F::ONE);
    for i in (0..set_size).rev() {
        let t = b.mul(acc, x);
        acc = b.add(t, coeffs[i]);
    }
    b.output(acc, 0);
    b.output(acc, 1);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use yoso_field::F61;

    fn f(v: u64) -> F61 {
        F61::from(v)
    }

    #[test]
    fn wide_layered_shape() {
        let c = wide_layered::<F61>(8, 3, 2).unwrap();
        assert_eq!(c.mul_depth(), 3);
        assert_eq!(c.mul_count(), 24);
        assert_eq!(c.input_count(), 16);
        assert_eq!(c.outputs().len(), 8);
        // Evaluates without error on arbitrary inputs.
        let inputs: Vec<Vec<F61>> = vec![
            (0..8).map(|i| f(i + 1)).collect(),
            (0..8).map(|i| f(i + 11)).collect(),
        ];
        c.evaluate(&inputs).unwrap();
    }

    #[test]
    fn inner_product_correct() {
        let c = inner_product::<F61>(4).unwrap();
        let x = vec![f(1), f(2), f(3), f(4)];
        let y = vec![f(5), f(6), f(7), f(8)];
        let out = c.evaluate(&[x, y]).unwrap();
        assert_eq!(out[0], vec![f(70)]);
        assert_eq!(out[1], vec![f(70)]);
        assert_eq!(c.mul_count(), 4);
        assert_eq!(c.mul_depth(), 1);
    }

    #[test]
    fn poly_eval_correct() {
        // f(x) = 2 + 3x + x², x = 5 → 42.
        let c = poly_eval::<F61>(2).unwrap();
        let out = c.evaluate(&[vec![f(5)], vec![f(2), f(3), f(1)]]).unwrap();
        assert_eq!(out[0], vec![f(42)]);
        assert_eq!(c.mul_depth(), 2);
    }

    #[test]
    fn federated_stats_correct() {
        let c = federated_stats::<F61>(3, 2).unwrap();
        let inputs = vec![vec![f(1), f(2)], vec![f(3), f(4)], vec![f(5), f(6)]];
        let out = c.evaluate(&inputs).unwrap();
        assert_eq!(out[0], vec![f(21), f(91)]); // Σx, Σx²
    }

    #[test]
    fn mimc_deterministic_given_seed() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let c = mimc::<F61, _>(&mut rng, 4).unwrap();
        assert_eq!(c.mul_depth(), 8);
        let out1 = c.evaluate(&[vec![f(123)], vec![f(456)]]).unwrap();
        let out2 = c.evaluate(&[vec![f(123)], vec![f(456)]]).unwrap();
        assert_eq!(out1, out2);
        assert_eq!(out1[0], out1[1]);
    }

    #[test]
    fn matmul_correct() {
        let c = matmul::<F61>(2).unwrap();
        // A = [[1,2],[3,4]], B = [[5,6],[7,8]] → AB = [[19,22],[43,50]].
        let a = vec![f(1), f(2), f(3), f(4)];
        let b = vec![f(5), f(6), f(7), f(8)];
        let out = c.evaluate(&[a, b]).unwrap();
        assert_eq!(out[0], vec![f(19), f(22), f(43), f(50)]);
        assert_eq!(c.mul_count(), 8);
        assert_eq!(c.mul_depth(), 1);
    }

    #[test]
    fn set_membership_zero_iff_root() {
        let c = set_membership::<F61>(2).unwrap();
        // Set {3, 5}: (x−3)(x−5) = x² − 8x + 15 → coefficients (15, −8).
        let coeffs = vec![f(15), -f(8)];
        let member = c.evaluate(&[vec![f(3)], coeffs.clone()]).unwrap();
        assert_eq!(member[0], vec![F61::ZERO]);
        let non_member = c.evaluate(&[vec![f(4)], coeffs]).unwrap();
        assert_ne!(non_member[0], vec![F61::ZERO]);
    }

    #[test]
    fn weighted_average_correct() {
        let c = weighted_average::<F61>(2).unwrap();
        // values 10 (w 1), 20 (w 3): Σwx = 70, Σw = 4.
        let out = c.evaluate(&[vec![f(10), f(1)], vec![f(20), f(3)]]).unwrap();
        assert_eq!(out[0], vec![f(70), f(4)]);
        assert_eq!(out[1], vec![f(70), f(4)]);
    }
}
