//! Property tests for packed and standard Shamir sharing invariants.

use proptest::prelude::*;
use rand::SeedableRng;
use yoso_field::{F61, PrimeField};
use yoso_pss_sharing::{shamir, PackedSharing, PointLayout};

fn felt() -> impl Strategy<Value = F61> {
    any::<u64>().prop_map(F61::from_u64)
}

/// (n, k, degree) with 1 <= k <= degree+1 <= n.
fn params() -> impl Strategy<Value = (usize, usize, usize)> {
    (2usize..24).prop_flat_map(|n| {
        (1usize..=n.min(6)).prop_flat_map(move |k| ((k - 1)..n).prop_map(move |d| (n, k, d)))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn packed_roundtrip((n, k, d) in params(), seed in any::<u64>(), secrets_seed in any::<u64>()) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut srng = rand::rngs::StdRng::seed_from_u64(secrets_seed);
        let scheme = PackedSharing::<F61>::new(n, k).unwrap();
        let secrets: Vec<F61> = (0..k).map(|_| F61::random(&mut srng)).collect();
        let shares = scheme.share(&mut rng, &secrets, d).unwrap();
        let subset: Vec<usize> = (0..=d).collect();
        let got = scheme.reconstruct(&shares.select(&subset), d).unwrap();
        prop_assert_eq!(got, secrets);
    }

    #[test]
    fn packed_linearity((n, k, d) in params(), seed in any::<u64>(), c in felt()) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let scheme = PackedSharing::<F61>::new(n, k).unwrap();
        let a: Vec<F61> = (0..k).map(|_| F61::random(&mut rng)).collect();
        let b: Vec<F61> = (0..k).map(|_| F61::random(&mut rng)).collect();
        let sa = scheme.share(&mut rng, &a, d).unwrap();
        let sb = scheme.share(&mut rng, &b, d).unwrap();
        let combo = sa.scale(c).add(&sb);
        let subset: Vec<usize> = (0..=d).collect();
        let got = scheme.reconstruct(&combo.select(&subset), d).unwrap();
        let expect: Vec<F61> = a.iter().zip(&b).map(|(&x, &y)| c * x + y).collect();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn packed_multiplication(seed in any::<u64>(), n in 5usize..20) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let k = 2;
        let d = (n - 1) / 2; // so 2d < n
        prop_assume!(d + 1 >= k);
        let scheme = PackedSharing::<F61>::new(n, k).unwrap();
        let a: Vec<F61> = (0..k).map(|_| F61::random(&mut rng)).collect();
        let b: Vec<F61> = (0..k).map(|_| F61::random(&mut rng)).collect();
        let sa = scheme.share(&mut rng, &a, d).unwrap();
        let sb = scheme.share(&mut rng, &b, d).unwrap();
        let prod = sa.mul_elementwise(&sb);
        let subset: Vec<usize> = (0..=2 * d).collect();
        let got = scheme.reconstruct(&prod.select(&subset), 2 * d).unwrap();
        let expect: Vec<F61> = a.iter().zip(&b).map(|(&x, &y)| x * y).collect();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn corrupting_any_single_surplus_share_is_detected(
        seed in any::<u64>(), victim in 0usize..8, delta in 1u64..1000
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let scheme = PackedSharing::<F61>::new(8, 2).unwrap();
        let shares = scheme.share(&mut rng, &[F61::from(1u64), F61::from(2u64)], 3).unwrap();
        let all: Vec<usize> = (0..8).collect();
        let mut subset = shares.select(&all);
        subset[victim].value += F61::from(delta);
        prop_assert!(scheme.reconstruct(&subset, 3).is_err());
    }

    #[test]
    fn shamir_roundtrip(secret in felt(), seed in any::<u64>(), n in 2usize..20) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let t = (n - 1) / 2;
        let shares = shamir::share(&mut rng, secret, n, t).unwrap();
        prop_assert_eq!(shamir::reconstruct(&shares[..t + 1], t).unwrap(), secret);
        prop_assert_eq!(shamir::reconstruct(&shares[n - t - 1..], t).unwrap(), secret);
    }

    #[test]
    fn shamir_reshare_chain_preserves_secret(secret in felt(), seed in any::<u64>()) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let (n, t) = (7usize, 2usize);
        let mut shares = shamir::share(&mut rng, secret, n, t).unwrap();
        // Three committee handovers.
        for _ in 0..3 {
            let subs: Vec<Vec<_>> =
                shares.iter().map(|s| shamir::reshare(&mut rng, *s, n, t).unwrap()).collect();
            let providers: Vec<usize> = (0..t + 1).collect();
            shares = (0..n)
                .map(|j| {
                    let vals: Vec<F61> = providers.iter().map(|&p| subs[p][j].value).collect();
                    yoso_pss_sharing::Share {
                        party: j,
                        value: shamir::recombine_subshares(&providers, &vals, t).unwrap(),
                    }
                })
                .collect();
        }
        prop_assert_eq!(shamir::reconstruct(&shares[..t + 1], t).unwrap(), secret);
    }

    #[test]
    fn share_batch_matches_sequential((n, k, d) in params(), seed in any::<u64>(), rows in 1usize..5) {
        let scheme = PackedSharing::<F61>::new(n, k).unwrap();
        let mut srng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xa5a5);
        let batch: Vec<Vec<F61>> =
            (0..rows).map(|_| (0..k).map(|_| F61::random(&mut srng)).collect()).collect();
        // Same RNG stream, batched vs one-at-a-time: identical shares.
        let mut rng_a = rand::rngs::StdRng::seed_from_u64(seed);
        let mut rng_b = rand::rngs::StdRng::seed_from_u64(seed);
        let batched = scheme.share_batch(&mut rng_a, &batch, d).unwrap();
        for (row, got) in batch.iter().zip(&batched) {
            let expect = scheme.share(&mut rng_b, row, d).unwrap();
            prop_assert_eq!(got, &expect);
        }
        // And the batched reconstruct inverts the batched deal.
        let subset: Vec<usize> = (0..=d).collect();
        let opened: Vec<Vec<_>> = batched.iter().map(|s| s.select(&subset)).collect();
        let secrets = scheme.reconstruct_batch(&opened, d).unwrap();
        prop_assert_eq!(secrets, batch);
    }

    #[test]
    fn subgroup_layout_is_bit_identical_to_lagrange((n, k, d) in params(), seed in any::<u64>()) {
        // Two independently built schemes over the same subgroup
        // points: one keeps the transform plan, the other is forced
        // onto the Lagrange path. Same RNG stream → every dealt share
        // and every reconstruction must agree bit for bit, whichever
        // internal path each scheme takes for this (n, k, d).
        let fast = PackedSharing::<F61>::with_layout(n, k, PointLayout::Subgroup).unwrap();
        let mut slow = PackedSharing::<F61>::with_layout(n, k, PointLayout::Subgroup).unwrap();
        slow.disable_ntt();
        let mut srng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x5a5a);
        let secrets: Vec<F61> = (0..k).map(|_| F61::random(&mut srng)).collect();
        let mut rng_a = rand::rngs::StdRng::seed_from_u64(seed);
        let mut rng_b = rand::rngs::StdRng::seed_from_u64(seed);
        let a = fast.share(&mut rng_a, &secrets, d).unwrap();
        let b = slow.share(&mut rng_b, &secrets, d).unwrap();
        prop_assert_eq!(a.values(), b.values());
        let subset: Vec<usize> = (0..=d).collect();
        let ga = fast.reconstruct(&a.select(&subset), d).unwrap();
        let gb = slow.reconstruct(&b.select(&subset), d).unwrap();
        prop_assert_eq!(&ga, &gb);
        prop_assert_eq!(ga, secrets);
    }

    #[test]
    fn shamir_reconstruct_batch_matches_single(secret in felt(), seed in any::<u64>(), n in 2usize..16, rows in 1usize..5) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let t = (n - 1) / 2;
        let batch: Vec<Vec<_>> = (0..rows)
            .map(|i| shamir::share(&mut rng, secret + F61::from_u64(i as u64), n, t).unwrap())
            .collect();
        let got = shamir::reconstruct_batch(&batch, t).unwrap();
        for (i, shares) in batch.iter().enumerate() {
            prop_assert_eq!(got[i], shamir::reconstruct(shares, t).unwrap());
            prop_assert_eq!(got[i], secret + F61::from_u64(i as u64));
        }
    }
}
