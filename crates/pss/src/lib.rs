//! Packed Shamir secret sharing (Franklin–Yung).
//!
//! A degree-`d` *packed* Shamir sharing `[[x]]_d` stores a vector
//! `x ∈ F^k` of `k` secrets in a single sharing: a polynomial `f` of
//! degree at most `d` with `f(e_j) = x_j` at the *secret points*
//! `e_j = −(j−1)`, while party `i ∈ [n]` holds the *share* `f(i)`.
//!
//! Properties used throughout the paper (§3.2):
//!
//! - `d + 1` shares reconstruct; any `d − k + 1` shares are independent
//!   of the secrets.
//! - Linear homomorphism: `[[x + y]]_d = [[x]]_d + [[y]]_d`.
//! - Share-wise multiplication: `[[x * y]]_{d1+d2} = [[x]]_{d1} ⊙ [[y]]_{d2}`
//!   (requires `d1 + d2 < n`).
//! - Multiplication-friendliness: a *public* vector `c` can be
//!   multiplied in by locally computing the (deterministic)
//!   degree-`(k−1)` sharing `[[c]]_{k−1}` and share-wise multiplying.
//!
//! The crate exposes dealer-side whole-vector types ([`PackedShares`])
//! because the YOSO runtime simulates all roles in one process; the
//! per-party view is a [`Share`].
//!
//! # Example
//!
//! ```rust
//! use rand::SeedableRng;
//! use yoso_field::F61;
//! use yoso_pss_sharing::PackedSharing;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! // n = 10 parties, k = 3 secrets per sharing.
//! let scheme = PackedSharing::<F61>::new(10, 3)?;
//! let secrets = [F61::from(5u64), F61::from(7u64), F61::from(9u64)];
//! let shares = scheme.share(&mut rng, &secrets, 5)?;
//! let back = scheme.reconstruct(&shares.select(&[0, 2, 4, 6, 8, 9]), 5)?;
//! assert_eq!(back, secrets.to_vec());
//! # Ok::<(), yoso_pss_sharing::PssError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod shamir;

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex, RwLock};

use rand::Rng;
use serde::{Deserialize, Serialize};

use yoso_field::allocstats::ensure_filled;
use yoso_field::ntt::{self, NttDomain, NttScratch};
use yoso_field::{EvalDomain, FieldError, Poly, PrimeField};

/// Errors produced by sharing operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PssError {
    /// Scheme parameters are inconsistent (e.g. `k = 0` or `k > n`).
    BadParameters {
        /// Committee size.
        n: usize,
        /// Packing factor.
        k: usize,
    },
    /// A degree outside `[k−1, n−1]` was requested.
    BadDegree {
        /// The offending degree.
        degree: usize,
        /// Packing factor `k` of the scheme.
        k: usize,
        /// Committee size `n` of the scheme.
        n: usize,
    },
    /// Too few shares were supplied to reconstruct.
    NotEnoughShares {
        /// Shares supplied.
        got: usize,
        /// Shares required (`degree + 1`).
        need: usize,
    },
    /// Supplied shares are inconsistent with a single polynomial of the
    /// claimed degree (error detection tripped).
    Inconsistent,
    /// The number of secrets does not match the packing factor.
    SecretCountMismatch {
        /// Secrets supplied.
        got: usize,
        /// Packing factor `k`.
        expected: usize,
    },
    /// A duplicate party index appeared in a share set.
    DuplicateParty(usize),
    /// An underlying field error.
    Field(FieldError),
}

impl std::fmt::Display for PssError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PssError::BadParameters { n, k } => write!(f, "invalid packed sharing parameters: n={n}, k={k}"),
            PssError::BadDegree { degree, k, n } => {
                write!(f, "degree {degree} outside valid range [{}, {}]", k - 1, n - 1)
            }
            PssError::NotEnoughShares { got, need } => {
                write!(f, "not enough shares: got {got}, need {need}")
            }
            PssError::Inconsistent => write!(f, "shares are inconsistent with claimed degree"),
            PssError::SecretCountMismatch { got, expected } => {
                write!(f, "secret count mismatch: got {got}, expected {expected}")
            }
            PssError::DuplicateParty(i) => write!(f, "duplicate party index {i} in share set"),
            PssError::Field(e) => write!(f, "field error: {e}"),
        }
    }
}

impl std::error::Error for PssError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PssError::Field(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FieldError> for PssError {
    fn from(e: FieldError) -> Self {
        PssError::Field(e)
    }
}

/// Where a scheme places its evaluation points.
///
/// The layout is a *protocol parameter*: every role must agree on it,
/// since a share is an evaluation at the holder's point. Both layouts
/// provide identical secrecy and reconstruction guarantees (any set of
/// pairwise-distinct points does); they differ only in which fast
/// paths apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum PointLayout {
    /// Secrets at `0, −1, …, −(k−1)`; party `i` at `i + 1`. The
    /// paper's presentation and the default. Interpolation over these
    /// points always takes the `O(n²)` Lagrange path.
    #[default]
    Sequential,
    /// All points on a smooth-order multiplicative subgroup of `F*`,
    /// enumerated in subgroup-prefix order
    /// ([`ntt::chain_enumeration`]): secrets at the first `k`
    /// positions, parties at the next `n`. Dealing and reconstruction
    /// over transform-friendly subsets run in `O(n log n)` via
    /// [`NttDomain`]; everything else falls back to the Lagrange path
    /// with bit-identical results.
    Subgroup,
}

/// One party's share of a packed sharing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(bound = "")]
pub struct Share<F: PrimeField> {
    /// 0-based party index (party `i` evaluates at point `i + 1`).
    pub party: usize,
    /// The share value `f(party + 1)`.
    pub value: F,
}

/// A complete degree-`d` packed sharing: the dealer-side view holding
/// all `n` share values.
// lint:redact: Debug is implemented manually below and prints no share
// values (the full vector reconstructs the packed secrets); Serialize is
// required because dealt sharings cross the wire.
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(bound = "")]
pub struct PackedShares<F: PrimeField> {
    degree: usize,
    values: Vec<F>,
}

// lint:redact: prints the degree and share count only — the values
// together reconstruct every packed secret, so none are shown.
impl<F: PrimeField> std::fmt::Debug for PackedShares<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PackedShares")
            .field("degree", &self.degree)
            .field("values", &format_args!("<{} redacted>", self.values.len()))
            .finish()
    }
}

impl<F: PrimeField> PackedShares<F> {
    /// Assembles a sharing from externally produced share values —
    /// the recombination half of the distributed transform (DESIGN
    /// §13), where slice workers each compute a contiguous range of
    /// the shares ([`PackedSharing::share_slice_into`]) and the union
    /// is stitched back together in party order. The values are taken
    /// as-is; callers are responsible for `values[i]` being party
    /// `i`'s share of a degree-`degree` sharing.
    pub fn from_values(degree: usize, values: Vec<F>) -> Self {
        PackedShares { degree, values }
    }

    /// The sharing degree.
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// All `n` share values (index `i` belongs to party `i`).
    pub fn values(&self) -> &[F] {
        &self.values
    }

    /// The share of party `i` (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `i >= n`.
    pub fn share_of(&self, i: usize) -> Share<F> {
        Share { party: i, value: self.values[i] }
    }

    /// Extracts the shares of the given (0-based) parties.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn select(&self, parties: &[usize]) -> Vec<Share<F>> {
        parties.iter().map(|&i| self.share_of(i)).collect()
    }

    /// Share-wise addition. Result degree is the max of the operands.
    ///
    /// # Panics
    ///
    /// Panics if the share vectors have different lengths.
    pub fn add(&self, rhs: &Self) -> Self {
        assert_eq!(self.values.len(), rhs.values.len(), "mismatched committee sizes");
        PackedShares {
            degree: self.degree.max(rhs.degree),
            values: self.values.iter().zip(&rhs.values).map(|(&a, &b)| a + b).collect(),
        }
    }

    /// Share-wise subtraction.
    ///
    /// # Panics
    ///
    /// Panics if the share vectors have different lengths.
    pub fn sub(&self, rhs: &Self) -> Self {
        assert_eq!(self.values.len(), rhs.values.len(), "mismatched committee sizes");
        PackedShares {
            degree: self.degree.max(rhs.degree),
            values: self.values.iter().zip(&rhs.values).map(|(&a, &b)| a - b).collect(),
        }
    }

    /// Multiplication by a public scalar.
    pub fn scale(&self, s: F) -> Self {
        PackedShares { degree: self.degree, values: self.values.iter().map(|&v| v * s).collect() }
    }

    /// Share-wise multiplication: `[[x*y]]_{d1+d2}`.
    ///
    /// # Panics
    ///
    /// Panics if the share vectors have different lengths.
    pub fn mul_elementwise(&self, rhs: &Self) -> Self {
        assert_eq!(self.values.len(), rhs.values.len(), "mismatched committee sizes");
        PackedShares {
            degree: self.degree + rhs.degree,
            values: self.values.iter().zip(&rhs.values).map(|(&a, &b)| a * b).collect(),
        }
    }
}

/// A packed Shamir sharing scheme instance: `n` parties, `k` secrets
/// per sharing.
///
/// Precomputes the secret points and party points per the scheme's
/// [`PointLayout`], plus [`EvalDomain`]s for every node set the scheme
/// touches: dealing domains per sharing degree and reconstruction
/// domains per party subset. Domains memoise their recombination
/// vectors, so after the first deal/reconstruct at a given
/// degree/subset every further one is a plain matrix–vector product —
/// no interpolation. Under [`PointLayout::Subgroup`], dealing degrees
/// whose node count lies on the radix chain and reconstruction subsets
/// forming a subgroup coset instead take the `O(n log n)` transform
/// path ([`NttDomain`]), with bit-identical outputs. Clones share the
/// caches.
#[derive(Debug, Clone)]
pub struct PackedSharing<F: PrimeField> {
    n: usize,
    k: usize,
    layout: PointLayout,
    party_points: Vec<F>,
    secret_points: Vec<F>,
    /// Domain over the secret points (deterministic public sharings).
    secret_domain: Arc<EvalDomain<F>>,
    /// Dealing domains (secret points ∪ leading party points) keyed by
    /// sharing degree.
    share_domains: Arc<RwLock<HashMap<usize, Arc<EvalDomain<F>>>>>,
    /// Reconstruction domains keyed by the ordered party subset.
    recon_domains: ReconDomainCache<F>,
    /// Transform plan; `Some` only under [`PointLayout::Subgroup`].
    ntt: Option<Arc<NttPlan<F>>>,
}

/// Reconstruction-domain cache: ordered party subset → shared domain.
type ReconDomainCache<F> = Arc<RwLock<ReconCache<F>>>;

/// Maximum number of reconstruction domains retained per scheme.
///
/// Each entry pins an [`EvalDomain`] (or transform domain) whose
/// memoised recombination rows are `O(m)` field elements each, so an
/// unbounded map grows without limit across long epoch chains whose
/// crash patterns keep producing fresh party subsets. The protocol
/// cycles through only a handful of subsets per epoch, so a small
/// bound keeps the working set hot while capping memory.
const RECON_CACHE_CAP: usize = 64;

/// Bounded reconstruction-domain cache.
///
/// `BTreeMap`-backed so iteration order is deterministic (keyed by the
/// ordered party subset), with FIFO eviction by insertion stamp once
/// [`RECON_CACHE_CAP`] entries are held: the cache can never grow
/// without bound, and which entry is evicted never depends on hash
/// seeds or timing.
#[derive(Debug, Default)]
struct ReconCache<F: PrimeField> {
    entries: BTreeMap<Vec<usize>, (u64, ReconDomain<F>)>,
    next_stamp: u64,
}

impl<F: PrimeField> ReconCache<F> {
    fn get(&self, parties: &[usize]) -> Option<&ReconDomain<F>> {
        self.entries.get(parties).map(|(_, domain)| domain)
    }

    /// Inserts `domain` under `parties`, evicting the oldest entries
    /// when full. Returns the cached domain — an entry raced in by
    /// another writer wins, matching `entry().or_insert()` semantics.
    fn insert(&mut self, parties: Vec<usize>, domain: ReconDomain<F>) -> ReconDomain<F> {
        if let Some((_, hit)) = self.entries.get(&parties) {
            return hit.clone();
        }
        self.evict_to_cap();
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        self.entries.insert(parties, (stamp, domain.clone()));
        domain
    }

    /// Inserts or replaces the entry under `parties` (used when a
    /// Lagrange domain must supersede a cached transform domain).
    fn replace(&mut self, parties: Vec<usize>, domain: ReconDomain<F>) {
        if self.entries.remove(&parties).is_none() {
            self.evict_to_cap();
        }
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        self.entries.insert(parties, (stamp, domain));
    }

    fn evict_to_cap(&mut self) {
        while self.entries.len() >= RECON_CACHE_CAP {
            let oldest = self
                .entries
                .iter()
                .min_by_key(|(_, (stamp, _))| *stamp)
                .map(|(key, _)| key.clone());
            match oldest {
                Some(key) => {
                    self.entries.remove(&key);
                }
                None => return,
            }
        }
    }
}

/// A cached reconstruction domain: the general Lagrange machinery, or
/// a transform domain when the subset's points form a subgroup coset.
#[derive(Debug, Clone)]
enum ReconDomain<F: PrimeField> {
    Lagrange(Arc<EvalDomain<F>>),
    Ntt(Arc<NttDomain<F>>),
}

/// Precomputed transform data for [`PointLayout::Subgroup`].
#[derive(Debug)]
struct NttPlan<F: PrimeField> {
    /// The order-`N` subgroup domain hosting all scheme points.
    full: NttDomain<F>,
    /// Subgroup-prefix enumeration: node `i` of the scheme (secrets
    /// first, then parties) sits at exponent `positions[i]`.
    positions: Vec<usize>,
    /// Node counts `m` whose leading nodes form the order-`m` subgroup
    /// (ascending); dealing with `degree + 1` on this chain is
    /// transform-friendly.
    chain: Vec<usize>,
    /// Prefix subgroup domains keyed by chain size, built on demand
    /// from powers of the full root (so they enumerate the same
    /// elements).
    prefix: RwLock<BTreeMap<usize, Arc<NttDomain<F>>>>,
}

impl<F: PrimeField> NttPlan<F> {
    /// The order-`m` prefix domain (`m` must divide the full size).
    fn prefix_domain(&self, m: usize) -> Result<Arc<NttDomain<F>>, PssError> {
        if let Some(hit) = read_lock(&self.prefix).get(&m) {
            return Ok(Arc::clone(hit));
        }
        let step = self.full.len() / m;
        let root = self.full.root().pow(step as u64);
        let domain = Arc::new(NttDomain::with_root(m, root, F::ONE)?);
        Ok(Arc::clone(write_lock(&self.prefix).entry(m).or_insert(domain)))
    }
}

/// Dealing-node count below which the transform dispatch falls back to
/// the Lagrange path even when the count lies on the radix chain.
///
/// Measured crossover (BENCH_hotpath.json): at 33 nodes the transform
/// *loses* to the memoised Lagrange recombination rows
/// (`interp_speedup: 0.57`) because the full-domain forward pass
/// dominates when the prefix is tiny, while at 143 nodes it wins 6.5×.
/// Both paths evaluate the same unique polynomial exactly, so the
/// routing is a pure performance choice with bit-identical outputs.
pub const NTT_DEAL_CROSSOVER: usize = 64;

/// Reusable working buffers for the `*_into` dealing and
/// reconstruction entry points ([`PackedSharing::share_into`],
/// [`PackedSharing::reconstruct_into`], …).
///
/// Every buffer grows to its high-water mark on first use and is then
/// reused verbatim — `yoso_field::allocstats` counts only the growths,
/// which is what `yoso bench-scale` reports as hot-path allocations. A
/// scratch may be moved freely between schemes, degrees and
/// operations; buffers are resized per call.
#[derive(Debug, Default)]
pub struct PssScratch<F: PrimeField> {
    /// Dealing-node values (secrets, then randomness), or the leading
    /// `degree + 1` share values during reconstruction.
    ys: Vec<F>,
    /// Natural-order staging for the transform deal.
    natural: Vec<F>,
    /// Interpolated coefficient vector (transform paths).
    coeffs: Vec<F>,
    /// Full-domain evaluations (transform deal).
    evals: Vec<F>,
    /// Party indices of the reconstructing subset.
    parties: Vec<usize>,
    /// Per-party duplicate-detection bitmap.
    seen: Vec<bool>,
    /// Transform working memory.
    ntt: NttScratch<F>,
}

impl<F: PrimeField> PssScratch<F> {
    /// An empty scratch; buffers allocate lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// A pool of [`PssScratch`] buffers shared across worker threads.
///
/// With `reuse = true` (arena mode) scratches are checked out, used
/// and returned, so steady-state calls allocate nothing; with
/// `reuse = false` (legacy mode) every call gets a fresh scratch whose
/// growths are counted by `yoso_field::allocstats` — the two modes are
/// the measured comparison in `BENCH_scale.json`. Results are
/// bit-identical either way: scratch contents never influence outputs,
/// only where the working memory lives.
#[derive(Debug)]
pub struct ScratchPool<F: PrimeField> {
    pool: Mutex<Vec<PssScratch<F>>>,
    reuse: bool,
}

impl<F: PrimeField> ScratchPool<F> {
    /// Creates a pool; `reuse` selects arena mode (see type docs).
    pub fn new(reuse: bool) -> Self {
        ScratchPool { pool: Mutex::new(Vec::new()), reuse }
    }

    /// Whether the pool recycles scratches (arena mode).
    pub fn reuse(&self) -> bool {
        self.reuse
    }

    /// Runs `f` with a scratch: pooled in arena mode, fresh otherwise.
    pub fn with<R>(&self, f: impl FnOnce(&mut PssScratch<F>) -> R) -> R {
        let mut scratch = if self.reuse {
            self.pool
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .pop()
                .unwrap_or_default()
        } else {
            PssScratch::default()
        };
        let out = f(&mut scratch);
        if self.reuse {
            self.pool
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .push(scratch);
        }
        out
    }
}

fn dot<F: PrimeField>(row: &[F], ys: &[F]) -> F {
    row.iter().zip(ys).map(|(&r, &y)| r * y).sum()
}

/// Evaluates the polynomial with coefficient vector `coeffs` (constant
/// term first, trailing zeros allowed) at `x` by Horner's rule — the
/// same association as [`Poly::eval`], so results are bit-identical
/// (high-order zero coefficients contribute exactly zero).
fn horner<F: PrimeField>(coeffs: &[F], x: F) -> F {
    let mut acc = F::ZERO;
    for &c in coeffs.iter().rev() {
        acc = acc * x + c;
    }
    acc
}

fn read_lock<T>(lock: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn write_lock<T>(lock: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl<F: PrimeField> PackedSharing<F> {
    /// Creates a scheme for `n` parties packing `k` secrets with the
    /// default [`PointLayout::Sequential`].
    ///
    /// # Errors
    ///
    /// Returns [`PssError::BadParameters`] unless `1 ≤ k ≤ n` and
    /// `n + k ≤ MODULUS` (points must be distinct in the field).
    pub fn new(n: usize, k: usize) -> Result<Self, PssError> {
        Self::with_layout(n, k, PointLayout::Sequential)
    }

    /// Creates a scheme for `n` parties packing `k` secrets with an
    /// explicit [`PointLayout`].
    ///
    /// # Errors
    ///
    /// Returns [`PssError::BadParameters`] as [`Self::new`], or — for
    /// [`PointLayout::Subgroup`] — if no smooth subgroup of size at
    /// least `n + k` divides `p − 1` within a small search window
    /// (never the case for `F_{2^61−1}` at practical sizes).
    pub fn with_layout(n: usize, k: usize, layout: PointLayout) -> Result<Self, PssError> {
        if k == 0 || k > n || n == 0 || (n + k) as u64 >= F::MODULUS {
            return Err(PssError::BadParameters { n, k });
        }
        let (party_points, secret_points, ntt) = match layout {
            PointLayout::Sequential => {
                let party: Vec<F> = (1..=n as u64).map(F::from_u64).collect();
                let secret: Vec<F> = (0..k as i64).map(|j| F::from_i64(-j)).collect();
                (party, secret, None)
            }
            PointLayout::Subgroup => {
                let size = Self::find_subgroup_size(n + k)
                    .ok_or(PssError::BadParameters { n, k })?;
                let full = NttDomain::<F>::new(size)?;
                let positions = ntt::chain_enumeration(full.radices());
                let chain = ntt::chain_sizes(full.radices());
                let points = full.points();
                let secret: Vec<F> = positions[..k].iter().map(|&e| points[e]).collect();
                let party: Vec<F> = positions[k..k + n].iter().map(|&e| points[e]).collect();
                let plan = NttPlan { full, positions, chain, prefix: RwLock::new(BTreeMap::new()) };
                (party, secret, Some(Arc::new(plan)))
            }
        };
        let secret_domain = Arc::new(EvalDomain::new(secret_points.clone())?);
        Ok(PackedSharing {
            n,
            k,
            layout,
            party_points,
            secret_points,
            secret_domain,
            share_domains: Arc::new(RwLock::new(HashMap::new())),
            recon_domains: Arc::new(RwLock::new(ReconCache::default())),
            ntt,
        })
    }

    /// The smallest supported transform size hosting `min` points, if
    /// one exists within a small multiple of the target (the smooth
    /// divisors of `p − 1` are dense, so the window is generous).
    fn find_subgroup_size(min: usize) -> Option<usize> {
        (min..=min.saturating_mul(4).saturating_add(64))
            .find(|&size| ntt::supported_size::<F>(size))
    }

    /// The dealing domain for `degree`: secret points followed by the
    /// first `degree + 1 − k` party points.
    fn share_domain(&self, degree: usize) -> Result<Arc<EvalDomain<F>>, PssError> {
        if let Some(hit) = read_lock(&self.share_domains).get(&degree) {
            return Ok(Arc::clone(hit));
        }
        let extra = degree + 1 - self.k;
        let mut points = self.secret_points.clone();
        points.extend_from_slice(&self.party_points[..extra]);
        let domain = Arc::new(EvalDomain::new(points)?);
        Ok(Arc::clone(
            write_lock(&self.share_domains).entry(degree).or_insert(domain),
        ))
    }

    /// The reconstruction domain over the given ordered party subset.
    /// Under [`PointLayout::Subgroup`] the subset's points are first
    /// tested for transform-friendliness
    /// ([`NttDomain::from_points`], an `O(m)` check); otherwise — and
    /// always under [`PointLayout::Sequential`] — the general
    /// [`EvalDomain`] is built.
    fn recon_domain(&self, parties: &[usize]) -> Result<ReconDomain<F>, PssError> {
        if let Some(hit) = read_lock(&self.recon_domains).get(parties) {
            return Ok(hit.clone());
        }
        let points: Vec<F> = parties.iter().map(|&i| self.party_points[i]).collect();
        let domain = if self.ntt.is_some() {
            match NttDomain::from_points(&points) {
                Ok(d) => ReconDomain::Ntt(Arc::new(d)),
                Err(_) => ReconDomain::Lagrange(Arc::new(EvalDomain::new(points)?)),
            }
        } else {
            ReconDomain::Lagrange(Arc::new(EvalDomain::new(points)?))
        };
        Ok(write_lock(&self.recon_domains).insert(parties.to_vec(), domain))
    }

    /// A Lagrange reconstruction domain over the subset, for callers
    /// that need explicit recombination rows (which the transform path
    /// does not materialise). Replaces a cached transform entry so the
    /// built domain is reused.
    fn lagrange_recon_domain(&self, parties: &[usize]) -> Result<Arc<EvalDomain<F>>, PssError> {
        if let Some(ReconDomain::Lagrange(hit)) = read_lock(&self.recon_domains).get(parties) {
            return Ok(Arc::clone(hit));
        }
        let points: Vec<F> = parties.iter().map(|&i| self.party_points[i]).collect();
        let domain = Arc::new(EvalDomain::new(points)?);
        write_lock(&self.recon_domains)
            .replace(parties.to_vec(), ReconDomain::Lagrange(Arc::clone(&domain)));
        Ok(domain)
    }

    /// Committee size `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Packing factor `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The point layout the scheme was built with.
    pub fn layout(&self) -> PointLayout {
        self.layout
    }

    /// The dealing node counts (`degree + 1`) served by the transform
    /// fast path; empty under [`PointLayout::Sequential`] or after
    /// [`Self::disable_ntt`].
    pub fn ntt_dealing_sizes(&self) -> Vec<usize> {
        self.ntt.as_ref().map(|p| p.chain.clone()).unwrap_or_default()
    }

    /// Test and benchmark hook: drops the transform plan so every
    /// operation takes the Lagrange path. Outputs are bit-identical
    /// with or without the plan; this exists to *prove* that in parity
    /// tests and to measure the speedup.
    pub fn disable_ntt(&mut self) {
        self.ntt = None;
    }

    /// The evaluation point of party `i` (0-based), i.e. `i + 1`.
    pub fn party_point(&self, i: usize) -> F {
        self.party_points[i]
    }

    /// The evaluation point storing secret `j`, i.e. `−j` (0-based).
    pub fn secret_point(&self, j: usize) -> F {
        self.secret_points[j]
    }

    fn check_degree(&self, degree: usize) -> Result<(), PssError> {
        if degree + 1 < self.k || degree >= self.n {
            return Err(PssError::BadDegree { degree, k: self.k, n: self.n });
        }
        Ok(())
    }

    /// Deals a fresh uniformly random degree-`degree` sharing of
    /// `secrets`.
    ///
    /// The dealt polynomial is pinned by the `k` secrets plus
    /// `degree + 1 − k` random values at the first party points — the
    /// result is uniform among degree-`degree` polynomials with the
    /// prescribed secrets. Party shares are produced directly through
    /// the dealing domain's cached recombination vectors, so repeated
    /// deals at the same degree never re-interpolate.
    ///
    /// # Errors
    ///
    /// Returns [`PssError::SecretCountMismatch`] or
    /// [`PssError::BadDegree`] on malformed input.
    pub fn share<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        secrets: &[F],
        degree: usize,
    ) -> Result<PackedShares<F>, PssError> {
        let mut values = Vec::new();
        self.share_into(rng, secrets, degree, &mut values, &mut PssScratch::default())?;
        Ok(PackedShares { degree, values })
    }

    /// Deals a sharing into caller-provided buffers — the arena variant
    /// of [`Self::share`]. Share values land in `out` (resized to `n`);
    /// every intermediate lives in `scratch`, so a caller reusing both
    /// across gates allocates only on first touch.
    ///
    /// Randomness is drawn exactly as in [`Self::share`], so the dealt
    /// values are bit-identical to the owning variant under the same
    /// RNG state.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::share`].
    pub fn share_into<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        secrets: &[F],
        degree: usize,
        out: &mut Vec<F>,
        scratch: &mut PssScratch<F>,
    ) -> Result<(), PssError> {
        if secrets.len() != self.k {
            return Err(PssError::SecretCountMismatch { got: secrets.len(), expected: self.k });
        }
        self.check_degree(degree)?;
        ensure_filled(&mut scratch.ys, degree + 1, F::ZERO);
        scratch.ys[..self.k].copy_from_slice(secrets);
        for slot in &mut scratch.ys[self.k..] {
            *slot = F::random(rng);
        }
        self.deal_values(degree, out, scratch)
    }

    /// Deals one sharing per row of `secrets_batch` — a whole layer of
    /// gates in one call. Randomness is drawn row by row in the same
    /// order as repeated [`Self::share`] calls, so a batched deal is
    /// reproducible against a sequential one under the same RNG.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::share`], checked per row.
    pub fn share_batch<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        secrets_batch: &[Vec<F>],
        degree: usize,
    ) -> Result<Vec<PackedShares<F>>, PssError> {
        self.check_degree(degree)?;
        let mut scratch = PssScratch::default();
        secrets_batch
            .iter()
            .map(|secrets| {
                let mut values = Vec::new();
                self.share_into(rng, secrets, degree, &mut values, &mut scratch)?;
                Ok(PackedShares { degree, values })
            })
            .collect()
    }

    /// Computes every party's share of the polynomial pinned by the
    /// `degree + 1` dealing-node values staged in `scratch.ys` (secrets
    /// first, then the leading party points), writing them into `out`.
    ///
    /// Both paths evaluate the *same unique polynomial* exactly, so
    /// their outputs are bit-identical; the transform path merely gets
    /// there in `O(N log N)` instead of `O(n·degree)` per deal.
    fn deal_values(
        &self,
        degree: usize,
        out: &mut Vec<F>,
        scratch: &mut PssScratch<F>,
    ) -> Result<(), PssError> {
        let PssScratch { ys, natural, coeffs, evals, ntt, .. } = scratch;
        if let Some(plan) = &self.ntt {
            let m = degree + 1;
            // Transform-friendly iff the dealing nodes (the first m
            // scheme nodes) are exactly an order-m subgroup — and the
            // prefix is large enough that the transform actually wins
            // (see [`NTT_DEAL_CROSSOVER`]).
            if m >= NTT_DEAL_CROSSOVER && plan.chain.contains(&m) {
                // Transform dealing: inverse-NTT the dealing values
                // over the order-m prefix subgroup to coefficients,
                // then forward-NTT over the full domain and read off
                // each party's evaluation.
                let full_size = plan.full.len();
                let step = full_size / m;
                let prefix = plan.prefix_domain(m)?;
                // Scatter the dealing values into the prefix domain's
                // natural (exponent) order: scheme node i sits at full
                // exponent positions[i] = step · (its prefix index).
                ensure_filled(natural, m, F::ZERO);
                for (i, &y) in ys.iter().enumerate() {
                    natural[plan.positions[i] / step] = y;
                }
                prefix.inverse_into(natural, coeffs, ntt)?;
                plan.full.evaluate_into(coeffs, evals, ntt)?;
                ensure_filled(out, self.n, F::ZERO);
                for (i, slot) in out.iter_mut().enumerate() {
                    *slot = evals[plan.positions[self.k + i]];
                }
                return Ok(());
            }
        }
        let domain = self.share_domain(degree)?;
        self.values_from_domain_into(&domain, ys, out);
        Ok(())
    }

    /// Evaluates the polynomial pinned by `ys` on `domain` at every
    /// party point via cached recombination vectors, into `out`.
    fn values_from_domain_into(&self, domain: &EvalDomain<F>, ys: &[F], out: &mut Vec<F>) {
        yoso_field::transformstats::bump_slice_muls((self.n * ys.len()) as u64);
        ensure_filled(out, self.n, F::ZERO);
        for (slot, &p) in out.iter_mut().zip(&self.party_points) {
            *slot = dot(&domain.basis_at(p), ys);
        }
    }

    /// The dealing-domain recombination rows for `degree`: row `i`
    /// takes the `degree + 1` dealing-node values (the `k` secrets,
    /// then the leading party points' values) to party `i`'s share.
    ///
    /// Callers that apply the dealing map to *homomorphic ciphertexts*
    /// need this explicit linear form — the transform path never
    /// materialises it — and using the scheme's own rows keeps them on
    /// whatever [`PointLayout`] the scheme was built with.
    ///
    /// # Errors
    ///
    /// Returns [`PssError::BadDegree`] outside `[k−1, n−1]`.
    pub fn dealing_basis_rows(&self, degree: usize) -> Result<Vec<Vec<F>>, PssError> {
        self.check_degree(degree)?;
        let domain = self.share_domain(degree)?;
        Ok(self
            .party_points
            .iter()
            .map(|&p| domain.basis_at(p).to_vec())
            .collect())
    }

    /// Slice variant of [`Self::share_into`]: deals the same sharing
    /// but writes only the shares of parties `lo..hi` into `out`
    /// (`out[j]` is party `lo + j`'s share).
    ///
    /// This is the worker half of the distributed transform (DESIGN
    /// §13): randomness is drawn *exactly* as in [`Self::share_into`]
    /// (all `degree + 1 − k` tail values, regardless of the slice), so
    /// any worker replaying the same RNG state computes a slice of the
    /// identical sharing — the union of slices over a partition of
    /// `0..n` is bit-identical to the full deal. The full-domain
    /// forward transform is replaced by per-point Horner evaluation of
    /// the shared coefficient vector, `O((hi − lo) · m)` instead of
    /// `O(N log N)`, with bit-identical values (exact arithmetic on
    /// the same unique polynomial).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::share_into`], plus
    /// [`PssError::Field`] with a length mismatch if `lo > hi` or
    /// `hi > n`.
    #[allow(clippy::too_many_arguments)]
    pub fn share_slice_into<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        secrets: &[F],
        degree: usize,
        lo: usize,
        hi: usize,
        out: &mut Vec<F>,
        scratch: &mut PssScratch<F>,
    ) -> Result<(), PssError> {
        if secrets.len() != self.k {
            return Err(PssError::SecretCountMismatch { got: secrets.len(), expected: self.k });
        }
        self.check_degree(degree)?;
        if lo > hi || hi > self.n {
            return Err(PssError::Field(FieldError::LengthMismatch { xs: self.n, ys: hi }));
        }
        ensure_filled(&mut scratch.ys, degree + 1, F::ZERO);
        scratch.ys[..self.k].copy_from_slice(secrets);
        for slot in &mut scratch.ys[self.k..] {
            *slot = F::random(rng);
        }
        self.deal_values_slice(degree, lo, hi, out, scratch)
    }

    /// Computes shares `lo..hi` of the polynomial pinned by the dealing
    /// values staged in `scratch.ys` — the slice core shared by
    /// [`Self::share_slice_into`].
    fn deal_values_slice(
        &self,
        degree: usize,
        lo: usize,
        hi: usize,
        out: &mut Vec<F>,
        scratch: &mut PssScratch<F>,
    ) -> Result<(), PssError> {
        let PssScratch { ys, natural, coeffs, ntt, .. } = scratch;
        if let Some(plan) = &self.ntt {
            let m = degree + 1;
            if m >= NTT_DEAL_CROSSOVER && plan.chain.contains(&m) {
                // Same prefix interpolation as the full transform deal,
                // then Horner at each owned party point instead of the
                // full-domain forward pass. Horner over the untrimmed
                // length-m coefficient vector evaluates the same unique
                // polynomial exactly, so each value is bit-identical to
                // the full path's `evals[positions[k + i]]`.
                let full_size = plan.full.len();
                let step = full_size / m;
                let prefix = plan.prefix_domain(m)?;
                ensure_filled(natural, m, F::ZERO);
                for (i, &y) in ys.iter().enumerate() {
                    natural[plan.positions[i] / step] = y;
                }
                prefix.inverse_into(natural, coeffs, ntt)?;
                yoso_field::transformstats::bump_slice_muls(((hi - lo) * m) as u64);
                ensure_filled(out, hi - lo, F::ZERO);
                for (slot, &p) in out.iter_mut().zip(&self.party_points[lo..hi]) {
                    *slot = horner(coeffs, p);
                }
                return Ok(());
            }
        }
        let domain = self.share_domain(degree)?;
        yoso_field::transformstats::bump_slice_muls(((hi - lo) * ys.len()) as u64);
        ensure_filled(out, hi - lo, F::ZERO);
        for (slot, &p) in out.iter_mut().zip(&self.party_points[lo..hi]) {
            *slot = dot(&domain.basis_at(p), ys);
        }
        Ok(())
    }

    /// Slice variant of [`Self::dealing_basis_rows`]: the rows of
    /// parties `lo..hi` only. A worker applying the dealing map to
    /// homomorphic ciphertexts materialises just the rows it owns —
    /// `O((hi − lo) · m)` row elements instead of `O(n · m)`.
    ///
    /// # Errors
    ///
    /// Returns [`PssError::BadDegree`] outside `[k−1, n−1]`, or
    /// [`PssError::Field`] with a length mismatch if `lo > hi` or
    /// `hi > n`.
    pub fn dealing_basis_rows_slice(
        &self,
        degree: usize,
        lo: usize,
        hi: usize,
    ) -> Result<Vec<Vec<F>>, PssError> {
        self.check_degree(degree)?;
        if lo > hi || hi > self.n {
            return Err(PssError::Field(FieldError::LengthMismatch { xs: self.n, ys: hi }));
        }
        let domain = self.share_domain(degree)?;
        Ok(self.party_points[lo..hi]
            .iter()
            .map(|&p| domain.basis_at(p).to_vec())
            .collect())
    }

    /// The *deterministic* degree-`(k−1)` sharing of a public vector
    /// `c` — every party can compute it locally (all shares are
    /// determined by the secrets). This is the first step of
    /// multiplication-friendliness.
    ///
    /// # Errors
    ///
    /// Returns [`PssError::SecretCountMismatch`] if `c` has the wrong
    /// length.
    pub fn share_public(&self, c: &[F]) -> Result<PackedShares<F>, PssError> {
        let mut values = Vec::new();
        self.share_public_into(c, &mut values)?;
        Ok(PackedShares { degree: self.k - 1, values })
    }

    /// Arena variant of [`Self::share_public`]: writes the
    /// deterministic degree-`(k−1)` share values into `out` (resized
    /// to `n`), allocating nothing once `out` has reached capacity.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::share_public`].
    pub fn share_public_into(&self, c: &[F], out: &mut Vec<F>) -> Result<(), PssError> {
        if c.len() != self.k {
            return Err(PssError::SecretCountMismatch { got: c.len(), expected: self.k });
        }
        self.values_from_domain_into(&self.secret_domain, c, out);
        Ok(())
    }

    /// Multiplies a public vector into a sharing:
    /// `c * [[x]]_d = [[c * x]]_{d + k − 1}` (the paper's
    /// `c * [[x]]_{n−k} = [[c*x]]_{n−1}` construction).
    ///
    /// # Errors
    ///
    /// Propagates [`PssError::SecretCountMismatch`]; returns
    /// [`PssError::BadDegree`] if the product degree reaches `n`.
    pub fn mul_public(&self, c: &[F], shares: &PackedShares<F>) -> Result<PackedShares<F>, PssError> {
        let c_shares = self.share_public(c)?;
        let out = c_shares.mul_elementwise(shares);
        if out.degree >= self.n {
            return Err(PssError::BadDegree { degree: out.degree, k: self.k, n: self.n });
        }
        Ok(out)
    }

    /// Reconstructs the packed secrets from at least `degree + 1`
    /// shares, with consistency (error-detection) checking of any
    /// surplus shares.
    ///
    /// # Errors
    ///
    /// - [`PssError::NotEnoughShares`] with fewer than `degree + 1`.
    /// - [`PssError::DuplicateParty`] on repeated indices.
    /// - [`PssError::Inconsistent`] if surplus shares do not lie on the
    ///   interpolated polynomial (some share is corrupted).
    pub fn reconstruct(&self, shares: &[Share<F>], degree: usize) -> Result<Vec<F>, PssError> {
        let mut out = Vec::new();
        self.reconstruct_into(shares, degree, &mut out, &mut PssScratch::default())?;
        Ok(out)
    }

    /// Arena variant of [`Self::reconstruct`]: the packed secrets land
    /// in `out` (resized to `k`); duplicate tracking, the share split
    /// and transform work live in `scratch`. Bit-identical to the
    /// owning variant on every path.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::reconstruct`].
    pub fn reconstruct_into(
        &self,
        shares: &[Share<F>],
        degree: usize,
        out: &mut Vec<F>,
        scratch: &mut PssScratch<F>,
    ) -> Result<(), PssError> {
        self.check_degree(degree)?;
        if shares.len() < degree + 1 {
            return Err(PssError::NotEnoughShares { got: shares.len(), need: degree + 1 });
        }
        let PssScratch { ys, coeffs, parties, seen, ntt, .. } = scratch;
        ensure_filled(seen, self.n, false);
        for s in shares {
            if s.party >= self.n || seen[s.party] {
                return Err(PssError::DuplicateParty(s.party));
            }
            seen[s.party] = true;
        }
        ensure_filled(parties, degree + 1, 0);
        ensure_filled(ys, degree + 1, F::ZERO);
        for (i, s) in shares[..degree + 1].iter().enumerate() {
            parties[i] = s.party;
            ys[i] = s.value;
        }
        match self.recon_domain(parties)? {
            ReconDomain::Lagrange(domain) => {
                // Error detection: every surplus share must agree with
                // the polynomial pinned by the first degree + 1 shares.
                // The cached recombination vector evaluates it without
                // interpolating.
                for s in &shares[degree + 1..] {
                    if dot(&domain.basis_at(self.party_points[s.party]), ys) != s.value {
                        return Err(PssError::Inconsistent);
                    }
                }
                ensure_filled(out, self.k, F::ZERO);
                for (slot, &e) in out.iter_mut().zip(&self.secret_points) {
                    *slot = dot(&domain.basis_at(e), ys);
                }
            }
            ReconDomain::Ntt(domain) => {
                // Transform path: interpolate once in O(m log m), then
                // evaluate the explicit polynomial (Horner, O(m) per
                // target). The coefficient vector is used untrimmed —
                // high-order zero coefficients contribute exactly zero,
                // so the result is bit-identical to the basis-row dot
                // products above and to a trimmed [`Poly`].
                domain.inverse_into(ys, coeffs, ntt)?;
                for s in &shares[degree + 1..] {
                    if horner(coeffs, self.party_points[s.party]) != s.value {
                        return Err(PssError::Inconsistent);
                    }
                }
                ensure_filled(out, self.k, F::ZERO);
                for (slot, &e) in out.iter_mut().zip(&self.secret_points) {
                    *slot = horner(coeffs, e);
                }
            }
        }
        Ok(())
    }

    /// Reconstructs a whole layer of sharings in one call. All rows
    /// must use the same degree; rows opened by the same party subset
    /// share one cached reconstruction domain.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::reconstruct`], checked per row.
    pub fn reconstruct_batch(
        &self,
        batch: &[Vec<Share<F>>],
        degree: usize,
    ) -> Result<Vec<Vec<F>>, PssError> {
        let mut scratch = PssScratch::default();
        batch
            .iter()
            .map(|shares| {
                let mut out = Vec::new();
                self.reconstruct_into(shares, degree, &mut out, &mut scratch)?;
                Ok(out)
            })
            .collect()
    }

    /// Reconstructs the full polynomial (used by tests and the runtime
    /// to inspect share structure).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::reconstruct`].
    pub fn reconstruct_poly(&self, shares: &[Share<F>], degree: usize) -> Result<Poly<F>, PssError> {
        self.check_degree(degree)?;
        if shares.len() < degree + 1 {
            return Err(PssError::NotEnoughShares { got: shares.len(), need: degree + 1 });
        }
        let parties: Vec<usize> = shares[..degree + 1].iter().map(|s| s.party).collect();
        let ys: Vec<F> = shares[..degree + 1].iter().map(|s| s.value).collect();
        match self.recon_domain(&parties)? {
            ReconDomain::Lagrange(domain) => Ok(domain.interpolate(&ys)?),
            ReconDomain::Ntt(domain) => Ok(domain.interpolate(&ys)?),
        }
    }

    /// The recombination vector taking shares of parties `parties`
    /// (0-based) to the value at secret point `j`: coefficients `w`
    /// with `x_j = Σ w_i · f(party_i + 1)` for any polynomial of degree
    /// `< parties.len()`.
    ///
    /// # Errors
    ///
    /// Propagates field errors on duplicate parties.
    pub fn recombination_vector(&self, parties: &[usize], j: usize) -> Result<Vec<F>, PssError> {
        let domain = self.lagrange_recon_domain(parties)?;
        Ok(domain.basis_at(self.secret_points[j]).to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use yoso_field::F61;

    fn f(v: u64) -> F61 {
        F61::from(v)
    }

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(77)
    }

    #[test]
    fn parameter_validation() {
        assert!(PackedSharing::<F61>::new(10, 3).is_ok());
        assert!(matches!(PackedSharing::<F61>::new(10, 0), Err(PssError::BadParameters { .. })));
        assert!(matches!(PackedSharing::<F61>::new(3, 4), Err(PssError::BadParameters { .. })));
        assert!(matches!(PackedSharing::<F61>::new(0, 0), Err(PssError::BadParameters { .. })));
    }

    #[test]
    fn share_reconstruct_roundtrip_all_degrees() {
        let mut rng = rng();
        let scheme = PackedSharing::<F61>::new(12, 4).unwrap();
        let secrets = [f(1), f(22), f(333), f(4444)];
        for degree in 3..12 {
            let shares = scheme.share(&mut rng, &secrets, degree).unwrap();
            let subset: Vec<usize> = (0..=degree).collect();
            let got = scheme.reconstruct(&shares.select(&subset), degree).unwrap();
            assert_eq!(got, secrets.to_vec(), "degree {degree}");
        }
    }

    #[test]
    fn reconstruct_from_any_subset() {
        let mut rng = rng();
        let scheme = PackedSharing::<F61>::new(9, 2).unwrap();
        let secrets = [f(10), f(20)];
        let shares = scheme.share(&mut rng, &secrets, 4).unwrap();
        for subset in [[0, 2, 4, 6, 8], [1, 3, 5, 7, 8], [4, 5, 6, 7, 0]] {
            let got = scheme.reconstruct(&shares.select(&subset), 4).unwrap();
            assert_eq!(got, secrets.to_vec());
        }
    }

    #[test]
    fn too_few_shares_rejected() {
        let mut rng = rng();
        let scheme = PackedSharing::<F61>::new(9, 2).unwrap();
        let shares = scheme.share(&mut rng, &[f(1), f(2)], 4).unwrap();
        let err = scheme.reconstruct(&shares.select(&[0, 1, 2, 3]), 4).unwrap_err();
        assert_eq!(err, PssError::NotEnoughShares { got: 4, need: 5 });
    }

    #[test]
    fn corrupted_surplus_share_detected() {
        let mut rng = rng();
        let scheme = PackedSharing::<F61>::new(9, 2).unwrap();
        let shares = scheme.share(&mut rng, &[f(1), f(2)], 4).unwrap();
        let mut subset = shares.select(&[0, 1, 2, 3, 4, 5]);
        subset[5].value += F61::ONE;
        assert_eq!(scheme.reconstruct(&subset, 4), Err(PssError::Inconsistent));
    }

    #[test]
    fn duplicate_party_rejected() {
        let mut rng = rng();
        let scheme = PackedSharing::<F61>::new(9, 2).unwrap();
        let shares = scheme.share(&mut rng, &[f(1), f(2)], 4).unwrap();
        let mut subset = shares.select(&[0, 1, 2, 3, 4]);
        subset[4].party = 0;
        subset[4].value = shares.share_of(0).value;
        assert!(matches!(scheme.reconstruct(&subset, 4), Err(PssError::DuplicateParty(0))));
    }

    #[test]
    fn linearity() {
        let mut rng = rng();
        let scheme = PackedSharing::<F61>::new(10, 3).unwrap();
        let a = [f(1), f(2), f(3)];
        let b = [f(100), f(200), f(300)];
        let sa = scheme.share(&mut rng, &a, 5).unwrap();
        let sb = scheme.share(&mut rng, &b, 5).unwrap();
        let sum = sa.add(&sb);
        let all: Vec<usize> = (0..10).collect();
        let got = scheme.reconstruct(&sum.select(&all), 5).unwrap();
        assert_eq!(got, vec![f(101), f(202), f(303)]);
        let diff = sum.sub(&sb);
        assert_eq!(scheme.reconstruct(&diff.select(&all), 5).unwrap(), a.to_vec());
        let scaled = sa.scale(f(7));
        assert_eq!(scheme.reconstruct(&scaled.select(&all), 5).unwrap(), vec![f(7), f(14), f(21)]);
    }

    #[test]
    fn elementwise_multiplication_degree_sum() {
        let mut rng = rng();
        let scheme = PackedSharing::<F61>::new(11, 2).unwrap();
        let a = [f(3), f(4)];
        let b = [f(5), f(6)];
        let sa = scheme.share(&mut rng, &a, 4).unwrap();
        let sb = scheme.share(&mut rng, &b, 4).unwrap();
        let prod = sa.mul_elementwise(&sb);
        assert_eq!(prod.degree(), 8);
        let all: Vec<usize> = (0..11).collect();
        let got = scheme.reconstruct(&prod.select(&all), 8).unwrap();
        assert_eq!(got, vec![f(15), f(24)]);
    }

    #[test]
    fn mul_public_matches_paper_rule() {
        // c * [[x]]_{n-k} = [[c*x]]_{n-1}
        let mut rng = rng();
        let n = 10;
        let k = 3;
        let scheme = PackedSharing::<F61>::new(n, k).unwrap();
        let x = [f(2), f(3), f(4)];
        let c = [f(10), f(20), f(30)];
        let sx = scheme.share(&mut rng, &x, n - k).unwrap();
        let prod = scheme.mul_public(&c, &sx).unwrap();
        assert_eq!(prod.degree(), n - 1);
        let all: Vec<usize> = (0..n).collect();
        let got = scheme.reconstruct(&prod.select(&all), n - 1).unwrap();
        assert_eq!(got, vec![f(20), f(60), f(120)]);
    }

    #[test]
    fn mul_public_rejects_overflow_degree() {
        let mut rng = rng();
        let scheme = PackedSharing::<F61>::new(10, 3).unwrap();
        let sx = scheme.share(&mut rng, &[f(1), f(2), f(3)], 8).unwrap();
        assert!(matches!(
            scheme.mul_public(&[f(1), f(1), f(1)], &sx),
            Err(PssError::BadDegree { .. })
        ));
    }

    #[test]
    fn privacy_low_degree_shares_leak_nothing() {
        // With degree d, any d - k + 1 shares of distinct random
        // sharings of *different* secrets are identically distributed.
        // We check a weaker invariant computationally: the shares of
        // d - k + 1 parties do not determine the secrets (many
        // polynomials through them yield different secrets).
        let mut rng = rng();
        let scheme = PackedSharing::<F61>::new(10, 3).unwrap();
        let d = 6;
        let secrets = [f(1), f(2), f(3)];
        let shares = scheme.share(&mut rng, &secrets, d).unwrap();
        let observed = shares.select(&[0, 1, 2, 3]); // d - k + 1 = 4 shares
        // Build a different completion consistent with the observed shares.
        let mut xs: Vec<F61> = observed.iter().map(|s| scheme.party_point(s.party)).collect();
        let mut ys: Vec<F61> = observed.iter().map(|s| s.value).collect();
        let fake_secrets = [f(9), f(8), f(7)];
        for (j, &fake) in fake_secrets.iter().enumerate() {
            xs.push(scheme.secret_point(j));
            ys.push(fake);
        }
        let poly = yoso_field::lagrange::interpolate(&xs, &ys).unwrap();
        assert!(poly.degree().unwrap() <= d, "a consistent fake completion exists");
    }

    #[test]
    fn recombination_vector_reconstructs_secret() {
        let mut rng = rng();
        let scheme = PackedSharing::<F61>::new(10, 3).unwrap();
        let secrets = [f(42), f(43), f(44)];
        let shares = scheme.share(&mut rng, &secrets, 6).unwrap();
        let parties: Vec<usize> = (0..7).collect();
        for (j, &secret) in secrets.iter().enumerate() {
            let w = scheme.recombination_vector(&parties, j).unwrap();
            let got: F61 = w
                .iter()
                .zip(&parties)
                .map(|(&wi, &p)| wi * shares.share_of(p).value)
                .sum();
            assert_eq!(got, secret);
        }
    }

    #[test]
    fn standard_shamir_is_k_equals_one() {
        let mut rng = rng();
        let scheme = PackedSharing::<F61>::new(7, 1).unwrap();
        let shares = scheme.share(&mut rng, &[f(99)], 3).unwrap();
        let got = scheme.reconstruct(&shares.select(&[1, 3, 5, 6]), 3).unwrap();
        assert_eq!(got, vec![f(99)]);
    }

    #[test]
    fn subgroup_layout_dealing_matches_lagrange_bit_for_bit() {
        // n + k = 18 = 2 · 3² divides p − 1, so the scheme lands on the
        // order-18 subgroup with radix chain {1, 2, 6, 18}.
        let scheme = PackedSharing::<F61>::with_layout(14, 4, PointLayout::Subgroup).unwrap();
        assert_eq!(scheme.layout(), PointLayout::Subgroup);
        assert_eq!(scheme.ntt_dealing_sizes(), vec![1, 2, 6, 18]);
        // An independently built twin with the plan dropped: identical
        // points, Lagrange-only arithmetic.
        let mut plain = PackedSharing::<F61>::with_layout(14, 4, PointLayout::Subgroup).unwrap();
        plain.disable_ntt();
        assert!(plain.ntt_dealing_sizes().is_empty());
        let secrets = [f(11), f(22), f(33), f(44)];
        for degree in 3..14 {
            let mut r1 = rand::rngs::StdRng::seed_from_u64(degree as u64);
            let mut r2 = rand::rngs::StdRng::seed_from_u64(degree as u64);
            let a = scheme.share(&mut r1, &secrets, degree).unwrap();
            let b = plain.share(&mut r2, &secrets, degree).unwrap();
            assert_eq!(a.values(), b.values(), "transform vs Lagrange deal, degree {degree}");
            let subset: Vec<usize> = (0..=degree).collect();
            assert_eq!(
                scheme.reconstruct(&a.select(&subset), degree).unwrap(),
                secrets.to_vec(),
                "degree {degree}"
            );
        }
    }

    #[test]
    fn subgroup_layout_transform_reconstruction() {
        // Degree 5: the 6 dealing nodes are exactly the order-6 prefix
        // subgroup (6 is on the radix chain), and the subset below has
        // exponents [1, 4, 7, 10, 13, 16] — a coset of that subgroup —
        // so dealing *and* reconstruction take the transform path.
        let scheme = PackedSharing::<F61>::with_layout(14, 4, PointLayout::Subgroup).unwrap();
        let subset = [2usize, 4, 6, 3, 5, 7];
        let pts: Vec<F61> = subset.iter().map(|&i| scheme.party_point(i)).collect();
        assert!(NttDomain::from_points(&pts).is_ok(), "test premise: coset subset");
        let mut rng = rng();
        let secrets = [f(5), f(6), f(7), f(8)];
        let shares = scheme.share(&mut rng, &secrets, 5).unwrap();
        let got = scheme.reconstruct(&shares.select(&subset), 5).unwrap();
        assert_eq!(got, secrets.to_vec());
        // Same subset with surplus shares: a corrupted surplus share
        // must still trip error detection on the transform path.
        let mut with_surplus = shares.select(&[2, 4, 6, 3, 5, 7, 0, 1]);
        assert_eq!(scheme.reconstruct(&with_surplus, 5).unwrap(), secrets.to_vec());
        with_surplus[7].value += F61::ONE;
        assert_eq!(scheme.reconstruct(&with_surplus, 5), Err(PssError::Inconsistent));
        // Asking for explicit recombination rows over the
        // transform-cached subset swaps in a Lagrange domain and agrees.
        let w = scheme.recombination_vector(&subset, 0).unwrap();
        let got0: F61 =
            w.iter().zip(&subset).map(|(&wi, &p)| wi * shares.share_of(p).value).sum();
        assert_eq!(got0, secrets[0]);
        assert_eq!(scheme.reconstruct(&shares.select(&subset), 5).unwrap(), secrets.to_vec());
    }

    #[test]
    fn subgroup_layout_on_small_field() {
        use yoso_field::Fp;
        type F97 = Fp<97>;
        // n + k = 8 divides 96 = |F97*|; radices [2, 2, 2], chain
        // {1, 2, 4, 8}.
        let scheme = PackedSharing::<F97>::with_layout(6, 2, PointLayout::Subgroup).unwrap();
        assert_eq!(scheme.ntt_dealing_sizes(), vec![1, 2, 4, 8]);
        let mut rng = rng();
        let secrets = [F97::from_u64(9), F97::from_u64(13)];
        for degree in 1..6 {
            let shares = scheme.share(&mut rng, &secrets, degree).unwrap();
            let subset: Vec<usize> = (0..=degree).collect();
            assert_eq!(
                scheme.reconstruct(&shares.select(&subset), degree).unwrap(),
                secrets.to_vec(),
                "degree {degree}"
            );
        }
    }

    #[test]
    fn transform_deal_above_crossover_matches_lagrange_bit_for_bit() {
        // n + k = 445 → order-450 subgroup (450 = 2 · 3² · 5² divides
        // p − 1), radix chain {1, 2, 6, 18, 90, 450}. Degree 89 gives
        // m = 90 ≥ NTT_DEAL_CROSSOVER on the chain, so this deal takes
        // the transform path (the 14/4 scheme above stays below the
        // crossover and pins the Lagrange fallback).
        let scheme = PackedSharing::<F61>::with_layout(400, 45, PointLayout::Subgroup).unwrap();
        assert!(scheme.ntt_dealing_sizes().contains(&90));
        let mut plain = scheme.clone();
        plain.disable_ntt();
        let secrets: Vec<F61> = (0..45).map(|i| f(1000 + i)).collect();
        let degree = 89;
        let mut r1 = rand::rngs::StdRng::seed_from_u64(5);
        let mut r2 = rand::rngs::StdRng::seed_from_u64(5);
        let a = scheme.share(&mut r1, &secrets, degree).unwrap();
        let b = plain.share(&mut r2, &secrets, degree).unwrap();
        assert_eq!(a.values(), b.values(), "transform vs Lagrange deal above crossover");
        let subset: Vec<usize> = (0..=degree).collect();
        assert_eq!(scheme.reconstruct(&a.select(&subset), degree).unwrap(), secrets);
    }

    #[test]
    fn recon_domain_cache_is_bounded_and_deterministic() {
        let mut rng = rng();
        let scheme = PackedSharing::<F61>::new(9, 2).unwrap();
        let secrets = [f(10), f(20)];
        let shares = scheme.share(&mut rng, &secrets, 4).unwrap();
        // Drive more distinct 5-party subsets through reconstruction
        // than the cache may hold.
        let mut subsets = 0;
        'outer: for a in 0..5 {
            for b in (a + 1)..6 {
                for c in (b + 1)..7 {
                    for d in (c + 1)..8 {
                        for e in (d + 1)..9 {
                            let got =
                                scheme.reconstruct(&shares.select(&[a, b, c, d, e]), 4).unwrap();
                            assert_eq!(got, secrets.to_vec());
                            subsets += 1;
                            if subsets > RECON_CACHE_CAP + 16 {
                                break 'outer;
                            }
                        }
                    }
                }
            }
        }
        assert!(subsets > RECON_CACHE_CAP, "test premise: cache overflow");
        let cache = read_lock(&scheme.recon_domains);
        assert!(cache.entries.len() <= RECON_CACHE_CAP, "cache must stay bounded");
        // BTreeMap keys iterate in subset order, independent of
        // insertion history or hash seeds.
        let keys: Vec<&Vec<usize>> = cache.entries.keys().collect();
        assert!(keys.windows(2).all(|w| w[0] <= w[1]), "deterministic iteration order");
    }

    #[test]
    fn arena_apis_match_owning_apis_bit_for_bit() {
        for layout in [PointLayout::Sequential, PointLayout::Subgroup] {
            let scheme = PackedSharing::<F61>::with_layout(14, 4, layout).unwrap();
            let secrets = [f(7), f(8), f(9), f(10)];
            let pool = ScratchPool::new(true);
            for degree in 3..14 {
                let mut r1 = rand::rngs::StdRng::seed_from_u64(degree as u64);
                let mut r2 = rand::rngs::StdRng::seed_from_u64(degree as u64);
                let owned = scheme.share(&mut r1, &secrets, degree).unwrap();
                let mut values = Vec::new();
                pool.with(|scratch| {
                    scheme.share_into(&mut r2, &secrets, degree, &mut values, scratch)
                })
                .unwrap();
                assert_eq!(owned.values(), &values[..], "deal parity, degree {degree}");
                let subset: Vec<usize> = (0..=degree).collect();
                let reference = scheme.reconstruct(&owned.select(&subset), degree).unwrap();
                let mut out = Vec::new();
                pool.with(|scratch| {
                    scheme.reconstruct_into(&owned.select(&subset), degree, &mut out, scratch)
                })
                .unwrap();
                assert_eq!(reference, out, "reconstruction parity, degree {degree}");
                assert_eq!(out, secrets.to_vec());
            }
            let c = [f(2), f(4), f(6), f(8)];
            let mut pub_values = Vec::new();
            scheme.share_public_into(&c, &mut pub_values).unwrap();
            assert_eq!(scheme.share_public(&c).unwrap().values(), &pub_values[..]);
        }
    }

    #[test]
    fn failstop_bound_reconstruction_at_table1_scale() {
        // §5.4 fail-stop at Table-1 scale: n = 1024, ε = 1/4 gives
        // t = 255, k = 257, so a product sharing has degree
        // t + 2(k − 1) = 767 and exactly t + 2(k − 1) + 1 = 768
        // surviving shares must reconstruct. The arena path (pooled
        // scratch, streaming driver) must be byte-identical to the
        // materialized owning path.
        let (t, k) = (255usize, 257usize);
        let n = 1024usize;
        let rec_degree = t + 2 * (k - 1);
        assert_eq!(rec_degree, 767);
        let scheme = PackedSharing::<F61>::with_layout(n, k, PointLayout::Subgroup).unwrap();
        let secrets: Vec<F61> = (0..k as u64).map(|i| f(i * i + 3)).collect();
        let mut rng = rng();
        let shares = scheme.share(&mut rng, &secrets, rec_degree).unwrap();
        // The first t + 1 = 256 parties crash after posting nothing;
        // the remaining 768 shares are exactly the fail-stop bound.
        let survivors: Vec<usize> = (n - (rec_degree + 1)..n).collect();
        assert_eq!(survivors.len(), t + 2 * (k - 1) + 1);
        let surviving = shares.select(&survivors);
        let materialized = scheme.reconstruct(&surviving, rec_degree).unwrap();
        let pool = ScratchPool::new(true);
        let mut streamed = Vec::new();
        pool.with(|scratch| {
            scheme.reconstruct_into(&surviving, rec_degree, &mut streamed, scratch)
        })
        .unwrap();
        assert_eq!(materialized, streamed, "arena path must be byte-identical");
        assert_eq!(streamed, secrets);
        // One share fewer must fail.
        assert!(matches!(
            scheme.reconstruct(&surviving[1..], rec_degree),
            Err(PssError::NotEnoughShares { .. })
        ));
    }

    #[test]
    fn slice_deal_union_matches_full_deal_bit_for_bit() {
        // Every partition of 0..n — even splits, uneven splits, empty
        // slices — must reassemble into exactly the full deal, for
        // both layouts and every degree.
        for layout in [PointLayout::Sequential, PointLayout::Subgroup] {
            let scheme = PackedSharing::<F61>::with_layout(14, 4, layout).unwrap();
            let secrets = [f(31), f(41), f(59), f(26)];
            for degree in 3..14 {
                let mut r1 = rand::rngs::StdRng::seed_from_u64(degree as u64);
                let full = scheme.share(&mut r1, &secrets, degree).unwrap();
                for bounds in [vec![0, 7, 14], vec![0, 3, 3, 10, 14], vec![0, 14], vec![0, 1, 13, 14]]
                {
                    let mut assembled = Vec::new();
                    for w in bounds.windows(2) {
                        // Each slice re-deals from the same RNG state,
                        // as a fleet worker replaying child seeds does.
                        let mut r = rand::rngs::StdRng::seed_from_u64(degree as u64);
                        let mut part = Vec::new();
                        let mut scratch = PssScratch::default();
                        scheme
                            .share_slice_into(&mut r, &secrets, degree, w[0], w[1], &mut part, &mut scratch)
                            .unwrap();
                        assert_eq!(part.len(), w[1] - w[0]);
                        assembled.extend_from_slice(&part);
                    }
                    assert_eq!(
                        full.values(),
                        &assembled[..],
                        "layout {layout:?} degree {degree} bounds {bounds:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn slice_deal_above_ntt_crossover_matches_full_transform() {
        // Degree 89 on the 400/45 subgroup scheme takes the transform
        // path (m = 90 on the chain): the slice Horner values must be
        // bit-identical to the full-domain forward transform's.
        let scheme = PackedSharing::<F61>::with_layout(400, 45, PointLayout::Subgroup).unwrap();
        let secrets: Vec<F61> = (0..45).map(|i| f(7 * i + 2)).collect();
        let degree = 89;
        let mut r1 = rand::rngs::StdRng::seed_from_u64(9);
        let full = scheme.share(&mut r1, &secrets, degree).unwrap();
        let mut assembled = Vec::new();
        for w in [0usize, 100, 250, 251, 400].windows(2) {
            let mut r = rand::rngs::StdRng::seed_from_u64(9);
            let mut part = Vec::new();
            let mut scratch = PssScratch::default();
            scheme
                .share_slice_into(&mut r, &secrets, degree, w[0], w[1], &mut part, &mut scratch)
                .unwrap();
            assembled.extend_from_slice(&part);
        }
        assert_eq!(full.values(), &assembled[..]);
    }

    #[test]
    fn dealing_basis_rows_slice_matches_full_rows() {
        for layout in [PointLayout::Sequential, PointLayout::Subgroup] {
            let scheme = PackedSharing::<F61>::with_layout(14, 4, layout).unwrap();
            let degree = 7;
            let full = scheme.dealing_basis_rows(degree).unwrap();
            let mut assembled: Vec<Vec<F61>> = Vec::new();
            for w in [0usize, 5, 5, 11, 14].windows(2) {
                assembled.extend(scheme.dealing_basis_rows_slice(degree, w[0], w[1]).unwrap());
            }
            assert_eq!(full, assembled, "layout {layout:?}");
        }
    }

    #[test]
    fn slice_deal_rejects_bad_ranges() {
        let scheme = PackedSharing::<F61>::new(10, 3).unwrap();
        let secrets = [f(1), f(2), f(3)];
        let mut r = rng();
        let mut out = Vec::new();
        let mut scratch = PssScratch::default();
        assert!(scheme
            .share_slice_into(&mut r, &secrets, 5, 4, 2, &mut out, &mut scratch)
            .is_err());
        assert!(scheme
            .share_slice_into(&mut r, &secrets, 5, 0, 11, &mut out, &mut scratch)
            .is_err());
        assert!(scheme.dealing_basis_rows_slice(5, 9, 11).is_err());
        assert!(scheme.dealing_basis_rows_slice(5, 3, 1).is_err());
    }

    #[test]
    fn debug_output_redacts_share_values() {
        let mut rng = rng();
        let scheme = PackedSharing::<F61>::new(12, 4).unwrap();
        let secrets = [f(1), f(22), f(333), f(4444)];
        let shares = scheme.share(&mut rng, &secrets, 7).unwrap();
        let rendered = format!("{:?}", shares);
        assert!(rendered.contains("redacted"), "{rendered}");
        // Evaluations of a random-coefficient polynomial are ~19-digit
        // field elements; none may appear in the Debug output.
        for v in &shares.values {
            let digits = v.as_u64().to_string();
            assert!(!rendered.contains(&digits), "Debug leaks a share value: {rendered}");
        }
    }
}
