//! Packed Shamir secret sharing (Franklin–Yung).
//!
//! A degree-`d` *packed* Shamir sharing `[[x]]_d` stores a vector
//! `x ∈ F^k` of `k` secrets in a single sharing: a polynomial `f` of
//! degree at most `d` with `f(e_j) = x_j` at the *secret points*
//! `e_j = −(j−1)`, while party `i ∈ [n]` holds the *share* `f(i)`.
//!
//! Properties used throughout the paper (§3.2):
//!
//! - `d + 1` shares reconstruct; any `d − k + 1` shares are independent
//!   of the secrets.
//! - Linear homomorphism: `[[x + y]]_d = [[x]]_d + [[y]]_d`.
//! - Share-wise multiplication: `[[x * y]]_{d1+d2} = [[x]]_{d1} ⊙ [[y]]_{d2}`
//!   (requires `d1 + d2 < n`).
//! - Multiplication-friendliness: a *public* vector `c` can be
//!   multiplied in by locally computing the (deterministic)
//!   degree-`(k−1)` sharing `[[c]]_{k−1}` and share-wise multiplying.
//!
//! The crate exposes dealer-side whole-vector types ([`PackedShares`])
//! because the YOSO runtime simulates all roles in one process; the
//! per-party view is a [`Share`].
//!
//! # Example
//!
//! ```rust
//! use rand::SeedableRng;
//! use yoso_field::F61;
//! use yoso_pss_sharing::PackedSharing;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! // n = 10 parties, k = 3 secrets per sharing.
//! let scheme = PackedSharing::<F61>::new(10, 3)?;
//! let secrets = [F61::from(5u64), F61::from(7u64), F61::from(9u64)];
//! let shares = scheme.share(&mut rng, &secrets, 5)?;
//! let back = scheme.reconstruct(&shares.select(&[0, 2, 4, 6, 8, 9]), 5)?;
//! assert_eq!(back, secrets.to_vec());
//! # Ok::<(), yoso_pss_sharing::PssError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod shamir;

use std::collections::HashMap;
use std::sync::{Arc, RwLock};

use rand::Rng;
use serde::{Deserialize, Serialize};

use yoso_field::{EvalDomain, FieldError, Poly, PrimeField};

/// Errors produced by sharing operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PssError {
    /// Scheme parameters are inconsistent (e.g. `k = 0` or `k > n`).
    BadParameters {
        /// Committee size.
        n: usize,
        /// Packing factor.
        k: usize,
    },
    /// A degree outside `[k−1, n−1]` was requested.
    BadDegree {
        /// The offending degree.
        degree: usize,
        /// Packing factor `k` of the scheme.
        k: usize,
        /// Committee size `n` of the scheme.
        n: usize,
    },
    /// Too few shares were supplied to reconstruct.
    NotEnoughShares {
        /// Shares supplied.
        got: usize,
        /// Shares required (`degree + 1`).
        need: usize,
    },
    /// Supplied shares are inconsistent with a single polynomial of the
    /// claimed degree (error detection tripped).
    Inconsistent,
    /// The number of secrets does not match the packing factor.
    SecretCountMismatch {
        /// Secrets supplied.
        got: usize,
        /// Packing factor `k`.
        expected: usize,
    },
    /// A duplicate party index appeared in a share set.
    DuplicateParty(usize),
    /// An underlying field error.
    Field(FieldError),
}

impl std::fmt::Display for PssError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PssError::BadParameters { n, k } => write!(f, "invalid packed sharing parameters: n={n}, k={k}"),
            PssError::BadDegree { degree, k, n } => {
                write!(f, "degree {degree} outside valid range [{}, {}]", k - 1, n - 1)
            }
            PssError::NotEnoughShares { got, need } => {
                write!(f, "not enough shares: got {got}, need {need}")
            }
            PssError::Inconsistent => write!(f, "shares are inconsistent with claimed degree"),
            PssError::SecretCountMismatch { got, expected } => {
                write!(f, "secret count mismatch: got {got}, expected {expected}")
            }
            PssError::DuplicateParty(i) => write!(f, "duplicate party index {i} in share set"),
            PssError::Field(e) => write!(f, "field error: {e}"),
        }
    }
}

impl std::error::Error for PssError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PssError::Field(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FieldError> for PssError {
    fn from(e: FieldError) -> Self {
        PssError::Field(e)
    }
}

/// One party's share of a packed sharing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(bound = "")]
pub struct Share<F: PrimeField> {
    /// 0-based party index (party `i` evaluates at point `i + 1`).
    pub party: usize,
    /// The share value `f(party + 1)`.
    pub value: F,
}

/// A complete degree-`d` packed sharing: the dealer-side view holding
/// all `n` share values.
// lint:redact: Debug is implemented manually below and prints no share
// values (the full vector reconstructs the packed secrets); Serialize is
// required because dealt sharings cross the wire.
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(bound = "")]
pub struct PackedShares<F: PrimeField> {
    degree: usize,
    values: Vec<F>,
}

// lint:redact: prints the degree and share count only — the values
// together reconstruct every packed secret, so none are shown.
impl<F: PrimeField> std::fmt::Debug for PackedShares<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PackedShares")
            .field("degree", &self.degree)
            .field("values", &format_args!("<{} redacted>", self.values.len()))
            .finish()
    }
}

impl<F: PrimeField> PackedShares<F> {
    /// The sharing degree.
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// All `n` share values (index `i` belongs to party `i`).
    pub fn values(&self) -> &[F] {
        &self.values
    }

    /// The share of party `i` (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `i >= n`.
    pub fn share_of(&self, i: usize) -> Share<F> {
        Share { party: i, value: self.values[i] }
    }

    /// Extracts the shares of the given (0-based) parties.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn select(&self, parties: &[usize]) -> Vec<Share<F>> {
        parties.iter().map(|&i| self.share_of(i)).collect()
    }

    /// Share-wise addition. Result degree is the max of the operands.
    ///
    /// # Panics
    ///
    /// Panics if the share vectors have different lengths.
    pub fn add(&self, rhs: &Self) -> Self {
        assert_eq!(self.values.len(), rhs.values.len(), "mismatched committee sizes");
        PackedShares {
            degree: self.degree.max(rhs.degree),
            values: self.values.iter().zip(&rhs.values).map(|(&a, &b)| a + b).collect(),
        }
    }

    /// Share-wise subtraction.
    ///
    /// # Panics
    ///
    /// Panics if the share vectors have different lengths.
    pub fn sub(&self, rhs: &Self) -> Self {
        assert_eq!(self.values.len(), rhs.values.len(), "mismatched committee sizes");
        PackedShares {
            degree: self.degree.max(rhs.degree),
            values: self.values.iter().zip(&rhs.values).map(|(&a, &b)| a - b).collect(),
        }
    }

    /// Multiplication by a public scalar.
    pub fn scale(&self, s: F) -> Self {
        PackedShares { degree: self.degree, values: self.values.iter().map(|&v| v * s).collect() }
    }

    /// Share-wise multiplication: `[[x*y]]_{d1+d2}`.
    ///
    /// # Panics
    ///
    /// Panics if the share vectors have different lengths.
    pub fn mul_elementwise(&self, rhs: &Self) -> Self {
        assert_eq!(self.values.len(), rhs.values.len(), "mismatched committee sizes");
        PackedShares {
            degree: self.degree + rhs.degree,
            values: self.values.iter().zip(&rhs.values).map(|(&a, &b)| a * b).collect(),
        }
    }
}

/// A packed Shamir sharing scheme instance: `n` parties, `k` secrets
/// per sharing.
///
/// Precomputes the secret points `e_j = −(j−1)` and the party points
/// `1..=n`, plus [`EvalDomain`]s for every node set the scheme
/// touches: dealing domains per sharing degree and reconstruction
/// domains per party subset. Domains memoise their recombination
/// vectors, so after the first deal/reconstruct at a given
/// degree/subset every further one is a plain matrix–vector product —
/// no interpolation. Clones share the caches.
#[derive(Debug, Clone)]
pub struct PackedSharing<F: PrimeField> {
    n: usize,
    k: usize,
    party_points: Vec<F>,
    secret_points: Vec<F>,
    /// Domain over the secret points (deterministic public sharings).
    secret_domain: Arc<EvalDomain<F>>,
    /// Dealing domains (secret points ∪ leading party points) keyed by
    /// sharing degree.
    share_domains: Arc<RwLock<HashMap<usize, Arc<EvalDomain<F>>>>>,
    /// Reconstruction domains keyed by the ordered party subset.
    recon_domains: ReconDomainCache<F>,
}

/// Reconstruction-domain cache: ordered party subset → shared domain.
type ReconDomainCache<F> = Arc<RwLock<HashMap<Vec<usize>, Arc<EvalDomain<F>>>>>;

fn dot<F: PrimeField>(row: &[F], ys: &[F]) -> F {
    row.iter().zip(ys).map(|(&r, &y)| r * y).sum()
}

fn read_lock<T>(lock: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn write_lock<T>(lock: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl<F: PrimeField> PackedSharing<F> {
    /// Creates a scheme for `n` parties packing `k` secrets.
    ///
    /// # Errors
    ///
    /// Returns [`PssError::BadParameters`] unless `1 ≤ k ≤ n` and
    /// `n + k ≤ MODULUS` (points must be distinct in the field).
    pub fn new(n: usize, k: usize) -> Result<Self, PssError> {
        if k == 0 || k > n || n == 0 || (n + k) as u64 >= F::MODULUS {
            return Err(PssError::BadParameters { n, k });
        }
        let party_points: Vec<F> = (1..=n as u64).map(F::from_u64).collect();
        let secret_points: Vec<F> = (0..k as i64).map(|j| F::from_i64(-j)).collect();
        let secret_domain = Arc::new(EvalDomain::new(secret_points.clone())?);
        Ok(PackedSharing {
            n,
            k,
            party_points,
            secret_points,
            secret_domain,
            share_domains: Arc::new(RwLock::new(HashMap::new())),
            recon_domains: Arc::new(RwLock::new(HashMap::new())),
        })
    }

    /// The dealing domain for `degree`: secret points followed by the
    /// first `degree + 1 − k` party points.
    fn share_domain(&self, degree: usize) -> Result<Arc<EvalDomain<F>>, PssError> {
        if let Some(hit) = read_lock(&self.share_domains).get(&degree) {
            return Ok(Arc::clone(hit));
        }
        let extra = degree + 1 - self.k;
        let mut points = self.secret_points.clone();
        points.extend_from_slice(&self.party_points[..extra]);
        let domain = Arc::new(EvalDomain::new(points)?);
        Ok(Arc::clone(
            write_lock(&self.share_domains).entry(degree).or_insert(domain),
        ))
    }

    /// The reconstruction domain over the given ordered party subset.
    fn recon_domain(&self, parties: &[usize]) -> Result<Arc<EvalDomain<F>>, PssError> {
        if let Some(hit) = read_lock(&self.recon_domains).get(parties) {
            return Ok(Arc::clone(hit));
        }
        let points: Vec<F> = parties.iter().map(|&i| self.party_points[i]).collect();
        let domain = Arc::new(EvalDomain::new(points)?);
        Ok(Arc::clone(
            write_lock(&self.recon_domains)
                .entry(parties.to_vec())
                .or_insert(domain),
        ))
    }

    /// Committee size `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Packing factor `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The evaluation point of party `i` (0-based), i.e. `i + 1`.
    pub fn party_point(&self, i: usize) -> F {
        self.party_points[i]
    }

    /// The evaluation point storing secret `j`, i.e. `−j` (0-based).
    pub fn secret_point(&self, j: usize) -> F {
        self.secret_points[j]
    }

    fn check_degree(&self, degree: usize) -> Result<(), PssError> {
        if degree + 1 < self.k || degree >= self.n {
            return Err(PssError::BadDegree { degree, k: self.k, n: self.n });
        }
        Ok(())
    }

    /// Deals a fresh uniformly random degree-`degree` sharing of
    /// `secrets`.
    ///
    /// The dealt polynomial is pinned by the `k` secrets plus
    /// `degree + 1 − k` random values at the first party points — the
    /// result is uniform among degree-`degree` polynomials with the
    /// prescribed secrets. Party shares are produced directly through
    /// the dealing domain's cached recombination vectors, so repeated
    /// deals at the same degree never re-interpolate.
    ///
    /// # Errors
    ///
    /// Returns [`PssError::SecretCountMismatch`] or
    /// [`PssError::BadDegree`] on malformed input.
    pub fn share<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        secrets: &[F],
        degree: usize,
    ) -> Result<PackedShares<F>, PssError> {
        if secrets.len() != self.k {
            return Err(PssError::SecretCountMismatch { got: secrets.len(), expected: self.k });
        }
        self.check_degree(degree)?;
        let domain = self.share_domain(degree)?;
        let extra = degree + 1 - self.k;
        let mut ys = secrets.to_vec();
        for _ in 0..extra {
            ys.push(F::random(rng));
        }
        Ok(PackedShares { degree, values: self.values_from_domain(&domain, &ys) })
    }

    /// Deals one sharing per row of `secrets_batch` — a whole layer of
    /// gates in one call. Randomness is drawn row by row in the same
    /// order as repeated [`Self::share`] calls, so a batched deal is
    /// reproducible against a sequential one under the same RNG.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::share`], checked per row.
    pub fn share_batch<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        secrets_batch: &[Vec<F>],
        degree: usize,
    ) -> Result<Vec<PackedShares<F>>, PssError> {
        self.check_degree(degree)?;
        let domain = self.share_domain(degree)?;
        let extra = degree + 1 - self.k;
        secrets_batch
            .iter()
            .map(|secrets| {
                if secrets.len() != self.k {
                    return Err(PssError::SecretCountMismatch {
                        got: secrets.len(),
                        expected: self.k,
                    });
                }
                let mut ys = secrets.clone();
                for _ in 0..extra {
                    ys.push(F::random(rng));
                }
                Ok(PackedShares { degree, values: self.values_from_domain(&domain, &ys) })
            })
            .collect()
    }

    /// Evaluates the polynomial pinned by `ys` on `domain` at every
    /// party point via cached recombination vectors.
    fn values_from_domain(&self, domain: &EvalDomain<F>, ys: &[F]) -> Vec<F> {
        self.party_points
            .iter()
            .map(|&p| dot(&domain.basis_at(p), ys))
            .collect()
    }

    /// The *deterministic* degree-`(k−1)` sharing of a public vector
    /// `c` — every party can compute it locally (all shares are
    /// determined by the secrets). This is the first step of
    /// multiplication-friendliness.
    ///
    /// # Errors
    ///
    /// Returns [`PssError::SecretCountMismatch`] if `c` has the wrong
    /// length.
    pub fn share_public(&self, c: &[F]) -> Result<PackedShares<F>, PssError> {
        if c.len() != self.k {
            return Err(PssError::SecretCountMismatch { got: c.len(), expected: self.k });
        }
        Ok(PackedShares {
            degree: self.k - 1,
            values: self.values_from_domain(&self.secret_domain, c),
        })
    }

    /// Multiplies a public vector into a sharing:
    /// `c * [[x]]_d = [[c * x]]_{d + k − 1}` (the paper's
    /// `c * [[x]]_{n−k} = [[c*x]]_{n−1}` construction).
    ///
    /// # Errors
    ///
    /// Propagates [`PssError::SecretCountMismatch`]; returns
    /// [`PssError::BadDegree`] if the product degree reaches `n`.
    pub fn mul_public(&self, c: &[F], shares: &PackedShares<F>) -> Result<PackedShares<F>, PssError> {
        let c_shares = self.share_public(c)?;
        let out = c_shares.mul_elementwise(shares);
        if out.degree >= self.n {
            return Err(PssError::BadDegree { degree: out.degree, k: self.k, n: self.n });
        }
        Ok(out)
    }

    /// Reconstructs the packed secrets from at least `degree + 1`
    /// shares, with consistency (error-detection) checking of any
    /// surplus shares.
    ///
    /// # Errors
    ///
    /// - [`PssError::NotEnoughShares`] with fewer than `degree + 1`.
    /// - [`PssError::DuplicateParty`] on repeated indices.
    /// - [`PssError::Inconsistent`] if surplus shares do not lie on the
    ///   interpolated polynomial (some share is corrupted).
    pub fn reconstruct(&self, shares: &[Share<F>], degree: usize) -> Result<Vec<F>, PssError> {
        self.check_degree(degree)?;
        if shares.len() < degree + 1 {
            return Err(PssError::NotEnoughShares { got: shares.len(), need: degree + 1 });
        }
        let mut seen = vec![false; self.n];
        for s in shares {
            if s.party >= self.n || seen[s.party] {
                return Err(PssError::DuplicateParty(s.party));
            }
            seen[s.party] = true;
        }
        let parties: Vec<usize> = shares[..degree + 1].iter().map(|s| s.party).collect();
        let domain = self.recon_domain(&parties)?;
        let ys: Vec<F> = shares[..degree + 1].iter().map(|s| s.value).collect();
        // Error detection: every surplus share must agree with the
        // polynomial pinned by the first degree + 1 shares. The cached
        // recombination vector evaluates it without interpolating.
        for s in &shares[degree + 1..] {
            if dot(&domain.basis_at(self.party_points[s.party]), &ys) != s.value {
                return Err(PssError::Inconsistent);
            }
        }
        Ok(self
            .secret_points
            .iter()
            .map(|&e| dot(&domain.basis_at(e), &ys))
            .collect())
    }

    /// Reconstructs a whole layer of sharings in one call. All rows
    /// must use the same degree; rows opened by the same party subset
    /// share one cached reconstruction domain.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::reconstruct`], checked per row.
    pub fn reconstruct_batch(
        &self,
        batch: &[Vec<Share<F>>],
        degree: usize,
    ) -> Result<Vec<Vec<F>>, PssError> {
        batch.iter().map(|shares| self.reconstruct(shares, degree)).collect()
    }

    /// Reconstructs the full polynomial (used by tests and the runtime
    /// to inspect share structure).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::reconstruct`].
    pub fn reconstruct_poly(&self, shares: &[Share<F>], degree: usize) -> Result<Poly<F>, PssError> {
        self.check_degree(degree)?;
        if shares.len() < degree + 1 {
            return Err(PssError::NotEnoughShares { got: shares.len(), need: degree + 1 });
        }
        let parties: Vec<usize> = shares[..degree + 1].iter().map(|s| s.party).collect();
        let domain = self.recon_domain(&parties)?;
        let ys: Vec<F> = shares[..degree + 1].iter().map(|s| s.value).collect();
        Ok(domain.interpolate(&ys)?)
    }

    /// The recombination vector taking shares of parties `parties`
    /// (0-based) to the value at secret point `j`: coefficients `w`
    /// with `x_j = Σ w_i · f(party_i + 1)` for any polynomial of degree
    /// `< parties.len()`.
    ///
    /// # Errors
    ///
    /// Propagates field errors on duplicate parties.
    pub fn recombination_vector(&self, parties: &[usize], j: usize) -> Result<Vec<F>, PssError> {
        let domain = self.recon_domain(parties)?;
        Ok(domain.basis_at(self.secret_points[j]).to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use yoso_field::F61;

    fn f(v: u64) -> F61 {
        F61::from(v)
    }

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(77)
    }

    #[test]
    fn parameter_validation() {
        assert!(PackedSharing::<F61>::new(10, 3).is_ok());
        assert!(matches!(PackedSharing::<F61>::new(10, 0), Err(PssError::BadParameters { .. })));
        assert!(matches!(PackedSharing::<F61>::new(3, 4), Err(PssError::BadParameters { .. })));
        assert!(matches!(PackedSharing::<F61>::new(0, 0), Err(PssError::BadParameters { .. })));
    }

    #[test]
    fn share_reconstruct_roundtrip_all_degrees() {
        let mut rng = rng();
        let scheme = PackedSharing::<F61>::new(12, 4).unwrap();
        let secrets = [f(1), f(22), f(333), f(4444)];
        for degree in 3..12 {
            let shares = scheme.share(&mut rng, &secrets, degree).unwrap();
            let subset: Vec<usize> = (0..=degree).collect();
            let got = scheme.reconstruct(&shares.select(&subset), degree).unwrap();
            assert_eq!(got, secrets.to_vec(), "degree {degree}");
        }
    }

    #[test]
    fn reconstruct_from_any_subset() {
        let mut rng = rng();
        let scheme = PackedSharing::<F61>::new(9, 2).unwrap();
        let secrets = [f(10), f(20)];
        let shares = scheme.share(&mut rng, &secrets, 4).unwrap();
        for subset in [[0, 2, 4, 6, 8], [1, 3, 5, 7, 8], [4, 5, 6, 7, 0]] {
            let got = scheme.reconstruct(&shares.select(&subset), 4).unwrap();
            assert_eq!(got, secrets.to_vec());
        }
    }

    #[test]
    fn too_few_shares_rejected() {
        let mut rng = rng();
        let scheme = PackedSharing::<F61>::new(9, 2).unwrap();
        let shares = scheme.share(&mut rng, &[f(1), f(2)], 4).unwrap();
        let err = scheme.reconstruct(&shares.select(&[0, 1, 2, 3]), 4).unwrap_err();
        assert_eq!(err, PssError::NotEnoughShares { got: 4, need: 5 });
    }

    #[test]
    fn corrupted_surplus_share_detected() {
        let mut rng = rng();
        let scheme = PackedSharing::<F61>::new(9, 2).unwrap();
        let shares = scheme.share(&mut rng, &[f(1), f(2)], 4).unwrap();
        let mut subset = shares.select(&[0, 1, 2, 3, 4, 5]);
        subset[5].value += F61::ONE;
        assert_eq!(scheme.reconstruct(&subset, 4), Err(PssError::Inconsistent));
    }

    #[test]
    fn duplicate_party_rejected() {
        let mut rng = rng();
        let scheme = PackedSharing::<F61>::new(9, 2).unwrap();
        let shares = scheme.share(&mut rng, &[f(1), f(2)], 4).unwrap();
        let mut subset = shares.select(&[0, 1, 2, 3, 4]);
        subset[4].party = 0;
        subset[4].value = shares.share_of(0).value;
        assert!(matches!(scheme.reconstruct(&subset, 4), Err(PssError::DuplicateParty(0))));
    }

    #[test]
    fn linearity() {
        let mut rng = rng();
        let scheme = PackedSharing::<F61>::new(10, 3).unwrap();
        let a = [f(1), f(2), f(3)];
        let b = [f(100), f(200), f(300)];
        let sa = scheme.share(&mut rng, &a, 5).unwrap();
        let sb = scheme.share(&mut rng, &b, 5).unwrap();
        let sum = sa.add(&sb);
        let all: Vec<usize> = (0..10).collect();
        let got = scheme.reconstruct(&sum.select(&all), 5).unwrap();
        assert_eq!(got, vec![f(101), f(202), f(303)]);
        let diff = sum.sub(&sb);
        assert_eq!(scheme.reconstruct(&diff.select(&all), 5).unwrap(), a.to_vec());
        let scaled = sa.scale(f(7));
        assert_eq!(scheme.reconstruct(&scaled.select(&all), 5).unwrap(), vec![f(7), f(14), f(21)]);
    }

    #[test]
    fn elementwise_multiplication_degree_sum() {
        let mut rng = rng();
        let scheme = PackedSharing::<F61>::new(11, 2).unwrap();
        let a = [f(3), f(4)];
        let b = [f(5), f(6)];
        let sa = scheme.share(&mut rng, &a, 4).unwrap();
        let sb = scheme.share(&mut rng, &b, 4).unwrap();
        let prod = sa.mul_elementwise(&sb);
        assert_eq!(prod.degree(), 8);
        let all: Vec<usize> = (0..11).collect();
        let got = scheme.reconstruct(&prod.select(&all), 8).unwrap();
        assert_eq!(got, vec![f(15), f(24)]);
    }

    #[test]
    fn mul_public_matches_paper_rule() {
        // c * [[x]]_{n-k} = [[c*x]]_{n-1}
        let mut rng = rng();
        let n = 10;
        let k = 3;
        let scheme = PackedSharing::<F61>::new(n, k).unwrap();
        let x = [f(2), f(3), f(4)];
        let c = [f(10), f(20), f(30)];
        let sx = scheme.share(&mut rng, &x, n - k).unwrap();
        let prod = scheme.mul_public(&c, &sx).unwrap();
        assert_eq!(prod.degree(), n - 1);
        let all: Vec<usize> = (0..n).collect();
        let got = scheme.reconstruct(&prod.select(&all), n - 1).unwrap();
        assert_eq!(got, vec![f(20), f(60), f(120)]);
    }

    #[test]
    fn mul_public_rejects_overflow_degree() {
        let mut rng = rng();
        let scheme = PackedSharing::<F61>::new(10, 3).unwrap();
        let sx = scheme.share(&mut rng, &[f(1), f(2), f(3)], 8).unwrap();
        assert!(matches!(
            scheme.mul_public(&[f(1), f(1), f(1)], &sx),
            Err(PssError::BadDegree { .. })
        ));
    }

    #[test]
    fn privacy_low_degree_shares_leak_nothing() {
        // With degree d, any d - k + 1 shares of distinct random
        // sharings of *different* secrets are identically distributed.
        // We check a weaker invariant computationally: the shares of
        // d - k + 1 parties do not determine the secrets (many
        // polynomials through them yield different secrets).
        let mut rng = rng();
        let scheme = PackedSharing::<F61>::new(10, 3).unwrap();
        let d = 6;
        let secrets = [f(1), f(2), f(3)];
        let shares = scheme.share(&mut rng, &secrets, d).unwrap();
        let observed = shares.select(&[0, 1, 2, 3]); // d - k + 1 = 4 shares
        // Build a different completion consistent with the observed shares.
        let mut xs: Vec<F61> = observed.iter().map(|s| scheme.party_point(s.party)).collect();
        let mut ys: Vec<F61> = observed.iter().map(|s| s.value).collect();
        let fake_secrets = [f(9), f(8), f(7)];
        for (j, &fake) in fake_secrets.iter().enumerate() {
            xs.push(scheme.secret_point(j));
            ys.push(fake);
        }
        let poly = yoso_field::lagrange::interpolate(&xs, &ys).unwrap();
        assert!(poly.degree().unwrap() <= d, "a consistent fake completion exists");
    }

    #[test]
    fn recombination_vector_reconstructs_secret() {
        let mut rng = rng();
        let scheme = PackedSharing::<F61>::new(10, 3).unwrap();
        let secrets = [f(42), f(43), f(44)];
        let shares = scheme.share(&mut rng, &secrets, 6).unwrap();
        let parties: Vec<usize> = (0..7).collect();
        for (j, &secret) in secrets.iter().enumerate() {
            let w = scheme.recombination_vector(&parties, j).unwrap();
            let got: F61 = w
                .iter()
                .zip(&parties)
                .map(|(&wi, &p)| wi * shares.share_of(p).value)
                .sum();
            assert_eq!(got, secret);
        }
    }

    #[test]
    fn standard_shamir_is_k_equals_one() {
        let mut rng = rng();
        let scheme = PackedSharing::<F61>::new(7, 1).unwrap();
        let shares = scheme.share(&mut rng, &[f(99)], 3).unwrap();
        let got = scheme.reconstruct(&shares.select(&[1, 3, 5, 6]), 3).unwrap();
        assert_eq!(got, vec![f(99)]);
    }

    #[test]
    fn debug_output_redacts_share_values() {
        let mut rng = rng();
        let scheme = PackedSharing::<F61>::new(12, 4).unwrap();
        let secrets = [f(1), f(22), f(333), f(4444)];
        let shares = scheme.share(&mut rng, &secrets, 7).unwrap();
        let rendered = format!("{:?}", shares);
        assert!(rendered.contains("redacted"), "{rendered}");
        // Evaluations of a random-coefficient polynomial are ~19-digit
        // field elements; none may appear in the Debug output.
        for v in &shares.values {
            let digits = v.as_u64().to_string();
            assert!(!rendered.contains(&digits), "Debug leaks a share value: {rendered}");
        }
    }
}
