//! Standard (non-packed) Shamir secret sharing of a single secret.
//!
//! Used for the threshold-encryption key sharing (`tsk` split among a
//! committee with threshold `t`) and for re-sharing shares between
//! committees (`TKRes`/`TKRec`). The secret lives at point `0`; party
//! `i` (0-based) holds the evaluation at `i + 1`.

use std::collections::HashMap;

use rand::Rng;

use yoso_field::{lagrange, EvalDomain, NttDomain, Poly, PrimeField};

use crate::{PssError, Share};

/// Deals a degree-`t` Shamir sharing of `secret` to `n` parties.
///
/// Any `t + 1` shares reconstruct; any `t` shares are independent of
/// the secret.
///
/// # Errors
///
/// Returns [`PssError::BadParameters`] if `t >= n` or `n` is too large
/// for the field.
pub fn share<F: PrimeField, R: Rng + ?Sized>(
    rng: &mut R,
    secret: F,
    n: usize,
    t: usize,
) -> Result<Vec<Share<F>>, PssError> {
    if n == 0 || t >= n || (n as u64) >= F::MODULUS - 1 {
        return Err(PssError::BadParameters { n, k: t });
    }
    let mut coeffs = Vec::with_capacity(t + 1);
    coeffs.push(secret);
    for _ in 0..t {
        coeffs.push(F::random(rng));
    }
    let poly = Poly::new(coeffs);
    Ok((0..n)
        .map(|i| Share { party: i, value: poly.eval(F::from_u64(i as u64 + 1)) })
        .collect())
}

/// Reconstructs the secret from at least `t + 1` shares, checking any
/// surplus shares for consistency.
///
/// # Errors
///
/// - [`PssError::NotEnoughShares`] with fewer than `t + 1` shares.
/// - [`PssError::DuplicateParty`] on repeated indices.
/// - [`PssError::Inconsistent`] if shares disagree with a single
///   degree-`t` polynomial.
pub fn reconstruct<F: PrimeField>(shares: &[Share<F>], t: usize) -> Result<F, PssError> {
    let domain = check_and_domain(shares, t)?;
    reconstruct_on(&domain, shares, t)
}

/// Reconstructs many sharings opened by (possibly) the same parties —
/// e.g. a committee's partial decryptions across an epoch. Items with
/// identical provider subsets share one evaluation domain, so the
/// per-item cost after the first is a single `O(t)` dot product.
///
/// Each fresh provider subset is first tested for
/// transform-friendliness ([`NttDomain::from_points`], an `O(t)`
/// check): a subset whose points form a subgroup coset of `F*` skips
/// the `O(t²)` Lagrange domain construction for an `O(t log t)`
/// transform, with bit-identical results (both paths evaluate the same
/// unique polynomial exactly).
///
/// # Errors
///
/// Same conditions as [`reconstruct`], checked per item.
pub fn reconstruct_batch<F: PrimeField>(
    batch: &[Vec<Share<F>>],
    t: usize,
) -> Result<Vec<F>, PssError> {
    let mut domains: HashMap<Vec<usize>, BatchDomain<F>> = HashMap::new();
    batch
        .iter()
        .map(|shares| {
            let key: Vec<usize> = shares.iter().map(|s| s.party).collect();
            if let Some(domain) = domains.get(&key) {
                return reconstruct_on_batch(domain, shares, t);
            }
            check_shares(shares, t)?;
            let xs = provider_points(shares, t);
            let domain = match NttDomain::from_points(&xs) {
                Ok(d) => BatchDomain::Ntt(d),
                Err(_) => BatchDomain::Lagrange(EvalDomain::new(xs)?),
            };
            let out = reconstruct_on_batch(&domain, shares, t);
            domains.insert(key, domain);
            out
        })
        .collect()
}

/// A batch reconstruction domain: Lagrange for arbitrary provider
/// subsets, transform for subgroup-coset subsets.
enum BatchDomain<F: PrimeField> {
    Lagrange(EvalDomain<F>),
    Ntt(NttDomain<F>),
}

fn reconstruct_on_batch<F: PrimeField>(
    domain: &BatchDomain<F>,
    shares: &[Share<F>],
    t: usize,
) -> Result<F, PssError> {
    match domain {
        BatchDomain::Lagrange(d) => reconstruct_on(d, shares, t),
        BatchDomain::Ntt(d) => {
            let ys: Vec<F> = shares[..t + 1].iter().map(|s| s.value).collect();
            let poly = d.interpolate(&ys)?;
            for s in &shares[t + 1..] {
                if poly.eval(F::from_u64(s.party as u64 + 1)) != s.value {
                    return Err(PssError::Inconsistent);
                }
            }
            // The secret is f(0), i.e. the constant coefficient —
            // bit-identical to the basis-row dot product at zero.
            Ok(poly.coeff(0))
        }
    }
}

/// The evaluation points of the first `t + 1` providers.
fn provider_points<F: PrimeField>(shares: &[Share<F>], t: usize) -> Vec<F> {
    shares[..t + 1].iter().map(|s| F::from_u64(s.party as u64 + 1)).collect()
}

/// Share-count and duplicate-provider validation.
fn check_shares<F: PrimeField>(shares: &[Share<F>], t: usize) -> Result<(), PssError> {
    if shares.len() < t + 1 {
        return Err(PssError::NotEnoughShares { got: shares.len(), need: t + 1 });
    }
    let mut seen = std::collections::HashSet::new();
    for s in shares {
        if !seen.insert(s.party) {
            return Err(PssError::DuplicateParty(s.party));
        }
    }
    Ok(())
}

/// Validates a share set and builds the evaluation domain over the
/// first `t + 1` provider points.
fn check_and_domain<F: PrimeField>(
    shares: &[Share<F>],
    t: usize,
) -> Result<EvalDomain<F>, PssError> {
    check_shares(shares, t)?;
    Ok(EvalDomain::new(provider_points(shares, t))?)
}

fn reconstruct_on<F: PrimeField>(
    domain: &EvalDomain<F>,
    shares: &[Share<F>],
    t: usize,
) -> Result<F, PssError> {
    let ys: Vec<F> = shares[..t + 1].iter().map(|s| s.value).collect();
    for s in &shares[t + 1..] {
        let row = domain.basis_at(F::from_u64(s.party as u64 + 1));
        let expect: F = row.iter().zip(&ys).map(|(&b, &y)| b * y).sum();
        if expect != s.value {
            return Err(PssError::Inconsistent);
        }
    }
    let row = domain.basis_at(F::ZERO);
    Ok(row.iter().zip(&ys).map(|(&b, &y)| b * y).sum())
}

/// Re-shares a share: party `i` deals a degree-`t` sub-sharing of its
/// own share `s_i` to the next committee (the `TKRes` operation). The
/// next committee member `j` reconstructs its new share of the original
/// secret by Lagrange-combining the subshares it received at point 0
/// ([`recombine_subshares`], the `TKRec` operation).
///
/// # Errors
///
/// Same conditions as [`share`].
pub fn reshare<F: PrimeField, R: Rng + ?Sized>(
    rng: &mut R,
    own_share: Share<F>,
    n: usize,
    t: usize,
) -> Result<Vec<Share<F>>, PssError> {
    share(rng, own_share.value, n, t)
}

/// Combines subshares received from the previous committee into a new
/// share of the original secret.
///
/// `subshares[j]` must be the subshare produced for *this* party by
/// previous-committee member `providers[j]` (0-based indices into the
/// previous committee). Requires at least `t + 1` providers.
///
/// # Errors
///
/// - [`PssError::NotEnoughShares`] with fewer than `t + 1` providers.
/// - [`PssError::DuplicateParty`] on repeated provider indices.
pub fn recombine_subshares<F: PrimeField>(
    providers: &[usize],
    subshares: &[F],
    t: usize,
) -> Result<F, PssError> {
    if providers.len() != subshares.len() || providers.len() < t + 1 {
        return Err(PssError::NotEnoughShares { got: providers.len().min(subshares.len()), need: t + 1 });
    }
    let mut seen = std::collections::HashSet::new();
    for &p in providers {
        if !seen.insert(p) {
            return Err(PssError::DuplicateParty(p));
        }
    }
    let xs: Vec<F> = providers[..t + 1].iter().map(|&p| F::from_u64(p as u64 + 1)).collect();
    let basis = lagrange::basis_at(&xs, F::ZERO)?;
    Ok(basis.iter().zip(&subshares[..t + 1]).map(|(&b, &s)| b * s).sum())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use yoso_field::F61;

    fn f(v: u64) -> F61 {
        F61::from(v)
    }

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(123)
    }

    #[test]
    fn share_reconstruct_roundtrip() {
        let mut rng = rng();
        for (n, t) in [(5, 2), (7, 3), (10, 4), (3, 1), (2, 0)] {
            let shares = share(&mut rng, f(777), n, t).unwrap();
            assert_eq!(shares.len(), n);
            let got = reconstruct(&shares[..t + 1], t).unwrap();
            assert_eq!(got, f(777), "n={n}, t={t}");
        }
    }

    #[test]
    fn t_shares_are_insufficient() {
        let mut rng = rng();
        let shares = share(&mut rng, f(5), 7, 3).unwrap();
        assert!(matches!(
            reconstruct(&shares[..3], 3),
            Err(PssError::NotEnoughShares { got: 3, need: 4 })
        ));
    }

    #[test]
    fn corrupted_share_detected_with_surplus() {
        let mut rng = rng();
        let mut shares = share(&mut rng, f(5), 7, 3).unwrap();
        shares[6].value += F61::ONE;
        assert_eq!(reconstruct(&shares, 3), Err(PssError::Inconsistent));
    }

    #[test]
    fn invalid_parameters() {
        let mut rng = rng();
        assert!(share(&mut rng, f(1), 3, 3).is_err());
        assert!(share(&mut rng, f(1), 0, 0).is_err());
    }

    #[test]
    fn reshare_preserves_secret() {
        let mut rng = rng();
        let n = 7;
        let t = 3;
        let secret = f(424_242);
        let shares = share(&mut rng, secret, n, t).unwrap();

        // Every old member re-shares its share to the new committee.
        let all_subshares: Vec<Vec<Share<F61>>> =
            shares.iter().map(|s| reshare(&mut rng, *s, n, t).unwrap()).collect();

        // New member j combines the subshares addressed to it, using
        // any t+1 providers.
        let providers: Vec<usize> = vec![0, 2, 4, 6];
        let new_shares: Vec<Share<F61>> = (0..n)
            .map(|j| {
                let subs: Vec<F61> = providers.iter().map(|&p| all_subshares[p][j].value).collect();
                Share { party: j, value: recombine_subshares(&providers, &subs, t).unwrap() }
            })
            .collect();

        // The new shares form a valid sharing of the same secret.
        let got = reconstruct(&new_shares[1..t + 2], t).unwrap();
        assert_eq!(got, secret);
    }

    #[test]
    fn recombine_rejects_duplicates_and_shortage() {
        assert!(matches!(
            recombine_subshares::<F61>(&[0, 0, 1, 2], &[f(1), f(1), f(2), f(3)], 3),
            Err(PssError::NotEnoughShares { .. }) | Err(PssError::DuplicateParty(_))
        ));
        assert!(matches!(
            recombine_subshares::<F61>(&[0, 1], &[f(1), f(2)], 3),
            Err(PssError::NotEnoughShares { .. })
        ));
    }

    #[test]
    fn batch_matches_single_reconstruct() {
        let mut rng = rng();
        let shares = share(&mut rng, f(2024), 9, 3).unwrap();
        let batch = vec![shares[..4].to_vec(), shares[2..7].to_vec(), shares.clone()];
        let got = reconstruct_batch(&batch, 3).unwrap();
        for (item, &g) in batch.iter().zip(&got) {
            assert_eq!(g, reconstruct(item, 3).unwrap());
            assert_eq!(g, f(2024));
        }
    }

    #[test]
    fn batch_takes_transform_path_on_coset_subsets() {
        // Craft a provider subset whose points form a multiplicative
        // coset: {3, −3} = 3·⟨−1⟩ (−1 has order 2 since the 2-adicity
        // of F61 is exactly 1). Party indices are point − 1, so the
        // "party" holding point −3 = p − 3 has the huge-but-legal index
        // p − 4; the Shamir module puts no committee bound on indices.
        let secret = f(5);
        let poly = Poly::new(vec![secret, f(2)]); // 5 + 2x, degree t = 1
        let x1 = f(3);
        let x2 = -f(3);
        let shares = vec![
            Share { party: 2, value: poly.eval(x1) },
            Share { party: (x2.as_u64() - 1) as usize, value: poly.eval(x2) },
        ];
        let got = reconstruct_batch(std::slice::from_ref(&shares), 1).unwrap();
        assert_eq!(got, vec![secret]);
        // The single-item (always-Lagrange) path agrees bit-for-bit.
        assert_eq!(got[0], reconstruct(&shares, 1).unwrap());
        let pts = [x1, x2];
        assert!(
            NttDomain::from_points(&pts).is_ok(),
            "test premise: {{3, −3}} must be transform-friendly"
        );
    }

    #[test]
    fn different_subsets_agree() {
        let mut rng = rng();
        let shares = share(&mut rng, f(31337), 9, 4).unwrap();
        let a = reconstruct(&shares[0..5], 4).unwrap();
        let b = reconstruct(&shares[4..9], 4).unwrap();
        assert_eq!(a, b);
    }
}
