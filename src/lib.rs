//! # yoso-pss — Scalable YOSO MPC via Packed Secret-Sharing
//!
//! A from-scratch Rust implementation of the protocol of Escudero,
//! Masserova and Polychroniadou (*Towards Scalable YOSO MPC via Packed
//! Secret-Sharing*, PODC 2025): YOSO MPC with guaranteed output
//! delivery whose **online communication is `O(1)` ring elements per
//! gate, independent of the committee size** — obtained by combining
//! Turbopack-style packed masks with a CDN-style threshold-encryption
//! backbone and *keys-for-future*, under the corruption gap
//! `t < n(1/2 − ε)`.
//!
//! This umbrella crate re-exports the whole workspace:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`bignum`] | `yoso-bignum` | Arbitrary-precision integers (threshold Paillier substrate) |
//! | [`field`] | `yoso-field` | `F_p` (`p = 2^61 − 1`), polynomials, Lagrange interpolation |
//! | [`crypto`] | `yoso-crypto` | SHA-256, Fiat–Shamir transcripts, PRG, hybrid PKE, commitments |
//! | [`the`] | `yoso-the` | Threshold encryption (mock field TE + threshold Paillier) and NIZKs |
//! | [`pss`] | `yoso-pss-sharing` | Packed Shamir secret sharing |
//! | [`circuit`] | `yoso-circuit` | Arithmetic circuit IR, batching, generators |
//! | [`runtime`] | `yoso-runtime` | Roles, committees, bulletin board, adversaries, metering |
//! | [`core`] | `yoso-core` | The protocol: setup / offline / online, fail-stop, CDN baseline |
//! | [`sortition`] | `yoso-sortition` | §6 committee-size analysis (Table 1) and Monte-Carlo validation |
//!
//! # Quickstart
//!
//! ```rust
//! use rand::SeedableRng;
//! use yoso_pss::circuit::generators;
//! use yoso_pss::core::{Engine, ExecutionConfig, ProtocolParams};
//! use yoso_pss::field::F61;
//! use yoso_pss::runtime::Adversary;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! // Two parties compute the inner product of their private vectors.
//! let circuit = generators::inner_product::<F61>(4)?;
//! let params = ProtocolParams::from_gap(12, 0.2)?; // n = 12, ε = 0.2
//! let engine = Engine::new(params, ExecutionConfig::default());
//! let x: Vec<F61> = (1..=4u64).map(F61::from).collect();
//! let y: Vec<F61> = (5..=8u64).map(F61::from).collect();
//! let run = engine.run(&mut rng, &circuit, &[x, y], &Adversary::none())?;
//! assert_eq!(run.outputs[0], vec![F61::from(70u64)]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench/src/bin/`
//! for the experiment harness that regenerates the paper's table and
//! quantitative claims.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use yoso_bignum as bignum;
pub use yoso_circuit as circuit;
pub use yoso_core as core;
pub use yoso_crypto as crypto;
pub use yoso_field as field;
pub use yoso_pss_sharing as pss;
pub use yoso_runtime as runtime;
pub use yoso_sortition as sortition;
pub use yoso_the as the;
