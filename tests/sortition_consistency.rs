//! Cross-crate consistency of the sortition layer: the runtime's
//! committee sampler vs the analysis crate's bounds, and the
//! analysis-to-protocol parameter pipeline.

use rand::SeedableRng;
use yoso_pss::core::ProtocolParams;
use yoso_pss::runtime::sortition::sample_committee;
use yoso_pss::sortition::{GapAnalysis, SecurityParams};

#[test]
fn sampled_committees_respect_analysis_bounds() {
    // At reduced security (bounds ≈ 2^-10), 2000 samples should show
    // zero-or-few violations of either bound.
    let mut rng = rand::rngs::StdRng::seed_from_u64(31);
    let sec = SecurityParams { k1: 4, k2: 10, k3: 10 };
    let (c_param, f) = (3000.0, 0.15);
    let a = GapAnalysis::compute(c_param, f, sec).expect("feasible");
    let honest_floor = (1.0 - a.eps3) * (1.0 - f) * (1.0 - f) * c_param;
    let mut corr_viol = 0;
    let mut floor_viol = 0;
    for _ in 0..2000 {
        let c = sample_committee(&mut rng, 1_000_000, f, c_param);
        if c.corrupt as u64 >= a.t {
            corr_viol += 1;
        }
        if ((c.size - c.corrupt) as f64) < honest_floor {
            floor_viol += 1;
        }
    }
    assert!(corr_viol <= 4, "corruption bound violated {corr_viol}/2000 times");
    assert!(floor_viol <= 4, "honest floor violated {floor_viol}/2000 times");
}

#[test]
fn analysis_parameters_instantiate_the_protocol() {
    // Every feasible Table-1 cell yields (scaled-down) protocol
    // parameters that pass validation: t/c and k/c ratios transfer.
    for row in yoso_pss::sortition::table1() {
        let Some(a) = row.analysis else { continue };
        // Scale the committee down to a simulatable size, preserving
        // the ratios.
        let n = 60usize;
        let t = ((a.t as f64 / a.c as f64) * n as f64).floor() as usize;
        let k = ((a.k as f64 / a.c as f64) * n as f64).floor() as usize + 1;
        let params = ProtocolParams::new(n, t, k);
        assert!(
            params.is_ok(),
            "scaled params n={n}, t={t}, k={k} from (C={}, f={}) must be feasible: {params:?}",
            row.c_param,
            row.f
        );
    }
}

#[test]
fn gap_epsilon_matches_analysis_epsilon() {
    let a = GapAnalysis::compute(10000.0, 0.1, SecurityParams::default()).unwrap();
    // t ≤ c(1/2 − ε) by construction.
    assert!(a.t as f64 <= a.c as f64 * (0.5 - a.eps) + 1.0);
    // The protocol-parameter derivation from the same (n, ε) agrees.
    let params = ProtocolParams::from_gap(200, a.eps).unwrap();
    assert!(params.t as f64 <= 200.0 * (0.5 - a.eps));
    assert!(params.k as f64 >= 200.0 * a.eps * 0.9);
}

#[test]
fn infeasible_cells_have_no_positive_gap() {
    // The ⊥ cells of Table 1: verify δ ≤ 1 is really why.
    for (c_param, f) in [(1000.0, 0.1), (5000.0, 0.2), (10000.0, 0.25)] {
        assert!(
            GapAnalysis::compute(c_param, f, SecurityParams::default()).is_none(),
            "({c_param}, {f}) must be infeasible"
        );
    }
}
