//! Property-based end-to-end testing: random arithmetic circuits are
//! run through the full protocol and must match cleartext evaluation.

use proptest::prelude::*;
use rand::SeedableRng;
use yoso_pss::circuit::{Circuit, CircuitBuilder, WireId};
use yoso_pss::core::{Engine, ExecutionConfig, ProtocolParams};
use yoso_pss::field::{F61, PrimeField};
use yoso_pss::runtime::{ActiveAttack, Adversary};

/// A compact description of one random gate.
#[derive(Debug, Clone)]
enum GateDesc {
    Add(usize, usize),
    Sub(usize, usize),
    Mul(usize, usize),
    MulConst(usize, u64),
    Const(u64),
}

fn gate_strategy() -> impl Strategy<Value = GateDesc> {
    prop_oneof![
        (any::<usize>(), any::<usize>()).prop_map(|(a, b)| GateDesc::Add(a, b)),
        (any::<usize>(), any::<usize>()).prop_map(|(a, b)| GateDesc::Sub(a, b)),
        (any::<usize>(), any::<usize>()).prop_map(|(a, b)| GateDesc::Mul(a, b)),
        (any::<usize>(), any::<u64>()).prop_map(|(a, c)| GateDesc::MulConst(a, c)),
        any::<u64>().prop_map(GateDesc::Const),
    ]
}

/// Builds a valid circuit from random gate descriptors: operand indices
/// are reduced modulo the number of wires defined so far.
fn build_circuit(inputs_per_client: &[usize], gates: &[GateDesc]) -> Circuit<F61> {
    let mut b = CircuitBuilder::<F61>::new();
    let mut wires: Vec<WireId> = Vec::new();
    for (client, &count) in inputs_per_client.iter().enumerate() {
        for _ in 0..count {
            wires.push(b.input(client));
        }
    }
    for g in gates {
        let pick = |i: usize| wires[i % wires.len()];
        let w = match *g {
            GateDesc::Add(a, c) => b.add(pick(a), pick(c)),
            GateDesc::Sub(a, c) => b.sub(pick(a), pick(c)),
            GateDesc::Mul(a, c) => b.mul(pick(a), pick(c)),
            GateDesc::MulConst(a, c) => b.mul_const(pick(a), F61::from_u64(c)),
            GateDesc::Const(c) => b.constant(F61::from_u64(c)),
        };
        wires.push(w);
    }
    // Route the last few wires to outputs across both clients.
    let out_count = wires.len().min(3);
    for (i, w) in wires.iter().rev().take(out_count).enumerate() {
        b.output(*w, i % inputs_per_client.len());
    }
    b.build().expect("random circuit is valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_circuit_matches_cleartext(
        in0 in 1usize..4,
        in1 in 1usize..4,
        gates in prop::collection::vec(gate_strategy(), 1..25),
        input_seed in any::<u64>(),
        run_seed in any::<u64>(),
    ) {
        let circuit = build_circuit(&[in0, in1], &gates);
        let mut ir = rand::rngs::StdRng::seed_from_u64(input_seed);
        let inputs: Vec<Vec<F61>> = circuit
            .inputs_per_client()
            .iter()
            .map(|ws| ws.iter().map(|_| F61::random(&mut ir)).collect())
            .collect();
        let expected = circuit.evaluate(&inputs).expect("cleartext");
        let params = ProtocolParams::new(10, 2, 2).unwrap();
        let engine = Engine::new(params, ExecutionConfig::sweep());
        let mut rr = rand::rngs::StdRng::seed_from_u64(run_seed);
        let run = engine.run(&mut rr, &circuit, &inputs, &Adversary::none()).unwrap();
        prop_assert_eq!(run.outputs, expected);
    }

    #[test]
    fn random_circuit_survives_attack(
        gates in prop::collection::vec(gate_strategy(), 1..15),
        run_seed in any::<u64>(),
    ) {
        let circuit = build_circuit(&[2, 2], &gates);
        let mut ir = rand::rngs::StdRng::seed_from_u64(7);
        let inputs: Vec<Vec<F61>> = circuit
            .inputs_per_client()
            .iter()
            .map(|ws| ws.iter().map(|_| F61::random(&mut ir)).collect())
            .collect();
        let expected = circuit.evaluate(&inputs).expect("cleartext");
        let params = ProtocolParams::new(10, 2, 2).unwrap();
        // Proof production on: the attack is filtered by real NIZKs.
        let engine = Engine::new(params, ExecutionConfig::default());
        let adversary = Adversary::active(2, ActiveAttack::WrongValue);
        let mut rr = rand::rngs::StdRng::seed_from_u64(run_seed);
        let run = engine.run(&mut rr, &circuit, &inputs, &adversary).unwrap();
        prop_assert_eq!(run.outputs, expected);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn random_valid_parameters_all_work(
        n in 4usize..20,
        t_frac in 0.0f64..0.5,
        k_frac in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        // Derive a (t, k) pair inside the GOD region, then run.
        let t = ((n as f64) * t_frac) as usize;
        let k_max = (n.saturating_sub(2 * t + 1)) / 2 + 1;
        prop_assume!(k_max >= 1);
        let k = 1 + ((k_frac * (k_max as f64 - 1.0)) as usize);
        let Ok(params) = ProtocolParams::new(n, t, k) else {
            // Boundary rounding can spill outside the region; skip.
            return Ok(());
        };
        let circuit = build_circuit(&[2, 2], &[
            GateDesc::Mul(0, 1),
            GateDesc::Add(2, 4),
            GateDesc::Mul(5, 3),
        ]);
        let mut ir = rand::rngs::StdRng::seed_from_u64(seed);
        let inputs: Vec<Vec<F61>> = circuit
            .inputs_per_client()
            .iter()
            .map(|ws| ws.iter().map(|_| F61::random(&mut ir)).collect())
            .collect();
        let expected = circuit.evaluate(&inputs).unwrap();
        let engine = Engine::new(params, ExecutionConfig::sweep());
        let run = engine.run(&mut ir, &circuit, &inputs, &Adversary::none()).unwrap();
        prop_assert_eq!(run.outputs, expected);
    }
}
