//! Integration tests of the faithful threshold-Paillier backbone: the
//! CDN-style ciphertext pipeline used by the offline phase, exercised
//! over `Z_N` with real (small-modulus) keys, NIZKs and committee
//! handovers.

use rand::SeedableRng;
use yoso_pss::bignum::{Int, Nat};
use yoso_pss::the::paillier::{nizk, Ciphertext, KeyShare, PublicKey, ThresholdPaillier};

const BITS: usize = 128;

fn setup(n: usize, t: usize, seed: u64) -> (PublicKey, Vec<KeyShare>, rand::rngs::StdRng) {
    let mut r = rand::rngs::StdRng::seed_from_u64(seed);
    let (pk, shares) = ThresholdPaillier::keygen(&mut r, BITS, n, t).unwrap();
    (pk, shares, r)
}

fn open(
    pk: &PublicKey,
    shares: &[KeyShare],
    ct: &Ciphertext,
    rng: &mut rand::rngs::StdRng,
) -> Nat {
    let mut partials = Vec::new();
    for share in shares.iter().take(pk.threshold + 1) {
        let pd = ThresholdPaillier::partial_decrypt(pk, share, ct);
        let proof = nizk::prove_pdec(rng, pk, ct, share, &pd);
        assert!(nizk::verify_pdec(pk, ct, &pd, &proof));
        partials.push(pd);
    }
    ThresholdPaillier::combine(pk, &partials, &shares[0].scale).unwrap()
}

#[test]
fn beaver_multiplication_over_paillier() {
    let (pk, shares, mut r) = setup(3, 1, 1);
    let x = Nat::from(111_111u64);
    let y = Nat::from(222_222u64);
    let a = Nat::from(999u64);
    let b = Nat::from(777u64);
    let ab = (&a * &b) % &pk.n_mod;

    let enc = |rng: &mut rand::rngs::StdRng, m: &Nat| ThresholdPaillier::encrypt(rng, &pk, m).0;
    let (c_x, c_y) = (enc(&mut r, &x), enc(&mut r, &y));
    let (c_a, c_b, c_ab) = (enc(&mut r, &a), enc(&mut r, &b), enc(&mut r, &ab));

    let one = Int::from(1i64);
    let c_eps = ThresholdPaillier::eval(&pk, &[&c_x, &c_a], &[one.clone(), one.clone()]).unwrap();
    let c_del = ThresholdPaillier::eval(&pk, &[&c_y, &c_b], &[one.clone(), one.clone()]).unwrap();
    let eps = open(&pk, &shares, &c_eps, &mut r);
    let del = open(&pk, &shares, &c_del, &mut r);

    // xy = εδ − εb − δa + ab.
    let mut c_xy = ThresholdPaillier::eval(
        &pk,
        &[&c_b, &c_a, &c_ab],
        &[-Int::from_nat(eps.clone()), -Int::from_nat(del.clone()), one],
    )
    .unwrap();
    c_xy = ThresholdPaillier::add_plain(&pk, &c_xy, &eps.mod_mul(&del, &pk.n_mod));

    let got = open(&pk, &shares, &c_xy, &mut r);
    assert_eq!(got, (&x * &y) % &pk.n_mod);
}

#[test]
fn enc_proofs_gate_contributions() {
    let (pk, _, mut r) = setup(3, 1, 2);
    let m = Nat::from(5u64);
    let (ct, rand_r) = ThresholdPaillier::encrypt(&mut r, &pk, &m);
    let proof = nizk::prove_enc(&mut r, &pk, &ct, &m, &rand_r);
    assert!(nizk::verify_enc(&pk, &ct, &proof));
    // A proof transplanted onto a different ciphertext fails.
    let (other, _) = ThresholdPaillier::encrypt(&mut r, &pk, &m);
    assert!(!nizk::verify_enc(&pk, &other, &proof));
}

#[test]
fn homomorphic_packing_over_z_n() {
    // The Step-4 packing algebra over Z_N: Lagrange coefficients exist
    // because node differences are tiny (coprime to N).
    let (pk, shares, mut r) = setup(3, 1, 3);
    let values = [Nat::from(10u64), Nat::from(20u64)];
    let helper = Nat::from(31_337u64);
    // Nodes: secrets at 0 and N−1 (≡ −1), helper at 1; shares at 2, 3, 4.
    // Lagrange over Z_N for f of degree 2 through (0, v0), (−1, v1), (1, h).
    // f(x) = v0·l0(x) + v1·l1(x) + h·l2(x).
    let cts: Vec<Ciphertext> = values
        .iter()
        .chain(std::iter::once(&helper))
        .map(|v| ThresholdPaillier::encrypt(&mut r, &pk, v).0)
        .collect();
    let n_mod = pk.n_mod.clone();
    let lagrange_at = |x: i64| -> Vec<Nat> {
        // nodes: 0, -1, 1 over the integers; coefficients mod N.
        let nodes = [0i64, -1, 1];
        nodes
            .iter()
            .enumerate()
            .map(|(j, &xj)| {
                let mut num = Int::from(1i64);
                let mut den = Int::from(1i64);
                for (m, &xm) in nodes.iter().enumerate() {
                    if m != j {
                        num = &num * &Int::from(x - xm);
                        den = &den * &Int::from(xj - xm);
                    }
                }
                let den_nat = den.mod_floor(&n_mod);
                let den_inv = den_nat.mod_inv(&n_mod).unwrap();
                num.mod_floor(&n_mod).mod_mul(&den_inv, &n_mod)
            })
            .collect()
    };
    // Compute encrypted shares at x = 2, 3, 4, then decrypt them and
    // re-interpolate the secrets.
    let mut share_vals = Vec::new();
    for x in [2i64, 3, 4] {
        let coeffs: Vec<Int> = lagrange_at(x).into_iter().map(Int::from_nat).collect();
        let ct_refs: Vec<&Ciphertext> = cts.iter().collect();
        let share_ct = ThresholdPaillier::eval(&pk, &ct_refs, &coeffs).unwrap();
        share_vals.push(open(&pk, &shares, &share_ct, &mut r));
    }
    // Interpolate back from the three share points to the secret points.
    let back = |target: i64| -> Nat {
        let nodes = [2i64, 3, 4];
        let mut acc = Nat::zero();
        for (j, &xj) in nodes.iter().enumerate() {
            let mut num = Int::from(1i64);
            let mut den = Int::from(1i64);
            for (m, &xm) in nodes.iter().enumerate() {
                if m != j {
                    num = &num * &Int::from(target - xm);
                    den = &den * &Int::from(xj - xm);
                }
            }
            let c = num
                .mod_floor(&pk.n_mod)
                .mod_mul(&den.mod_floor(&pk.n_mod).mod_inv(&pk.n_mod).unwrap(), &pk.n_mod);
            acc = acc.mod_add(&c.mod_mul(&share_vals[j], &pk.n_mod), &pk.n_mod);
        }
        acc
    };
    assert_eq!(back(0), values[0]);
    // Target −1 handled via mod_floor inside `back` (negative target).
    assert_eq!(back(-1), values[1]);
}

#[test]
fn key_handover_chain_two_epochs() {
    let (pk, shares, mut r) = setup(3, 1, 4);
    let m = Nat::from(424_242u64);
    let (ct, _) = ThresholdPaillier::encrypt(&mut r, &pk, &m);

    // Epoch 1 handover.
    let msgs1: Vec<_> =
        shares.iter().map(|s| ThresholdPaillier::reshare(&mut r, &pk, s)).collect();
    let chosen1: Vec<&_> = msgs1.iter().take(2).collect();
    let shares1: Vec<_> = (0..3)
        .map(|j| ThresholdPaillier::recombine_key(&pk, j, &chosen1, &Nat::one()).unwrap())
        .collect();
    assert_eq!(ThresholdPaillier::decrypt_with_shares(&pk, &ct, &shares1).unwrap(), m);

    // Epoch 2 handover (scale compounds by Δ² each time).
    let scale1 = shares1[0].scale.clone();
    let msgs2: Vec<_> =
        shares1.iter().map(|s| ThresholdPaillier::reshare(&mut r, &pk, s)).collect();
    let chosen2: Vec<&_> = vec![&msgs2[0], &msgs2[2]];
    let shares2: Vec<_> = (0..3)
        .map(|j| ThresholdPaillier::recombine_key(&pk, j, &chosen2, &scale1).unwrap())
        .collect();
    assert_eq!(ThresholdPaillier::decrypt_with_shares(&pk, &ct, &shares2).unwrap(), m);
}

#[test]
fn malformed_partials_are_rejected_by_combining() {
    let (pk, shares, mut r) = setup(3, 1, 5);
    let (ct, _) = ThresholdPaillier::encrypt(&mut r, &pk, &Nat::from(9u64));
    let good = ThresholdPaillier::partial_decrypt(&pk, &shares[0], &ct);
    let bad = yoso_pss::the::paillier::PartialDec {
        party: 1,
        value: good.value.mod_mul(&good.value, &pk.n_sq),
    };
    // Either the combination errors or yields a wrong plaintext —
    // never silently the right one (the NIZK layer is what rules this
    // out in the protocol; here we check the algebra is not magically
    // forgiving).
    let result = ThresholdPaillier::combine(&pk, &[good, bad], &Nat::one());
    if let Ok(m) = result {
        assert_ne!(m, Nat::from(9u64));
    }
}
