//! Metered-communication assertions: the complexity claims of
//! Theorem 1, checked on measured bulletin-board traffic.

use rand::SeedableRng;
use yoso_pss::circuit::{generators, Circuit};
use yoso_pss::core::baseline::BaselineEngine;
use yoso_pss::core::{Engine, ExecutionConfig, ProtocolParams};
use yoso_pss::field::{F61, PrimeField};
use yoso_pss::runtime::Adversary;

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

fn inputs_for(seed: u64, circuit: &Circuit<F61>) -> Vec<Vec<F61>> {
    let mut r = rng(seed);
    circuit
        .inputs_per_client()
        .iter()
        .map(|ws| ws.iter().map(|_| F61::random(&mut r)).collect())
        .collect()
}

/// Online per-gate cost of the packed protocol at gap ε and size n.
fn packed_online_per_gate(n: usize) -> f64 {
    let params = ProtocolParams::from_gap(n, 0.25).unwrap();
    let circuit = generators::wide_layered::<F61>(params.k * 2, 2, 2).unwrap();
    let inputs = inputs_for(1, &circuit);
    let run = Engine::new(params, ExecutionConfig::sweep())
        .run(&mut rng(2), &circuit, &inputs, &Adversary::none())
        .unwrap();
    run.online_elements_per_gate()
}

#[test]
fn online_cost_is_flat_in_committee_size() {
    let small = packed_online_per_gate(16);
    let large = packed_online_per_gate(128);
    // n grew 8×; per-gate cost may only drift by the small-k constant
    // effects (bounded well below 2×), never linearly.
    assert!(
        large / small < 1.5,
        "online per-gate cost should be flat: {small} at n=16 vs {large} at n=128"
    );
}

#[test]
fn online_cost_approaches_four_over_epsilon() {
    // Each member posts 1 share + 3 proof elements per batch of ≈ nε
    // gates ⇒ per-gate cost → 4/ε as n grows.
    let measured = packed_online_per_gate(128);
    let predicted = 4.0 / 0.25;
    assert!(
        (measured - predicted).abs() / predicted < 0.15,
        "measured {measured}, predicted {predicted}"
    );
}

#[test]
fn baseline_online_cost_is_linear_in_committee_size() {
    let per_gate = |n: usize| {
        let t = n / 2 - 1;
        let params = ProtocolParams::new(n, t, 1).unwrap();
        let circuit = generators::wide_layered::<F61>(8, 2, 2).unwrap();
        let inputs = inputs_for(3, &circuit);
        let run = BaselineEngine::new(params, ExecutionConfig::sweep())
            .run(&mut rng(4), &circuit, &inputs, &Adversary::none())
            .unwrap();
        run.elements("online/mult") as f64 / run.mul_gates as f64
    };
    let small = per_gate(16);
    let large = per_gate(64);
    let ratio = large / small;
    assert!((3.5..=4.5).contains(&ratio), "4× n should give ≈4× cost, got {ratio}");
}

#[test]
fn offline_cost_is_linear_in_committee_size() {
    let per_gate = |n: usize| {
        let params = ProtocolParams::from_gap(n, 0.25).unwrap();
        let circuit = generators::wide_layered::<F61>(params.k * 2, 2, 1).unwrap();
        let inputs = inputs_for(5, &circuit);
        let run = Engine::new(params, ExecutionConfig::sweep())
            .run(&mut rng(6), &circuit, &inputs, &Adversary::none())
            .unwrap();
        run.offline_elements_per_gate() / n as f64
    };
    // Normalized by n, the offline per-gate cost must be near-constant.
    let a = per_gate(16);
    let b = per_gate(96);
    assert!(
        (0.5..2.0).contains(&(b / a)),
        "offline cost should be Θ(n) per gate: normalized {a} vs {b}"
    );
}

#[test]
fn improvement_ratio_tracks_twice_packing_factor() {
    let n = 64;
    let params = ProtocolParams::from_gap(n, 0.25).unwrap();
    let circuit = generators::wide_layered::<F61>(params.k * 2, 2, 2).unwrap();
    let inputs = inputs_for(7, &circuit);
    let packed = Engine::new(params, ExecutionConfig::sweep())
        .run(&mut rng(8), &circuit, &inputs, &Adversary::none())
        .unwrap();
    let base_params = ProtocolParams::new(n, params.t, 1).unwrap();
    let baseline = BaselineEngine::new(base_params, ExecutionConfig::sweep())
        .run(&mut rng(8), &circuit, &inputs, &Adversary::none())
        .unwrap();
    let ratio = (baseline.elements("online/mult") as f64 / baseline.mul_gates as f64)
        / packed.online_elements_per_gate();
    let predicted = 2.0 * params.k as f64;
    assert!(
        (ratio - predicted).abs() / predicted < 0.2,
        "ratio {ratio} should track 2k = {predicted}"
    );
}

#[test]
fn addition_gates_cost_nothing_online() {
    // Same mul structure, with and without a pile of additions: the
    // online mult traffic must be identical.
    let build = |extra_adds: usize| {
        let mut b = yoso_pss::circuit::CircuitBuilder::<F61>::new();
        let x = b.input(0);
        let y = b.input(1);
        let mut s = b.add(x, y);
        for _ in 0..extra_adds {
            s = b.add(s, x);
        }
        let m = b.mul(s, y);
        b.output(m, 0);
        b.build().unwrap()
    };
    let params = ProtocolParams::new(8, 1, 1).unwrap();
    let run_for = |c: &Circuit<F61>| {
        let inputs = inputs_for(9, c);
        Engine::new(params, ExecutionConfig::sweep())
            .run(&mut rng(10), c, &inputs, &Adversary::none())
            .unwrap()
    };
    let lean = run_for(&build(0));
    let fat = run_for(&build(50));
    assert_eq!(lean.elements("online/3-mult"), fat.elements("online/3-mult"));
}

#[test]
fn adversary_presence_does_not_change_honest_traffic_shape() {
    // Malicious roles still post (wrong) messages, so totals match the
    // honest run; silent roles reduce traffic but never below the
    // reconstruction needs.
    let params = ProtocolParams::new(12, 3, 2).unwrap();
    let circuit = generators::inner_product::<F61>(4).unwrap();
    let inputs = inputs_for(11, &circuit);
    let honest = Engine::new(params, ExecutionConfig::default())
        .run(&mut rng(12), &circuit, &inputs, &Adversary::none())
        .unwrap();
    let attacked = Engine::new(params, ExecutionConfig::default())
        .run(
            &mut rng(12),
            &circuit,
            &inputs,
            &Adversary::active(3, yoso_pss::runtime::ActiveAttack::WrongValue),
        )
        .unwrap();
    assert_eq!(honest.elements("online/3-mult"), attacked.elements("online/3-mult"));
}
