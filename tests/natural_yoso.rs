//! "Natural YOSO" composition: the role-assignment layer (sortition
//! sampling + §6 analysis) feeding the protocol layer — committees are
//! *sampled*, their realized size and corruption become the protocol's
//! `(n, t)`, and the run must still deliver.
//!
//! The paper separates abstract YOSO (roles given) from natural YOSO
//! (role assignment included); this test exercises the seam.

use rand::SeedableRng;
use yoso_pss::circuit::generators;
use yoso_pss::core::{Engine, ExecutionConfig, ProtocolParams};
use yoso_pss::field::{F61, PrimeField};
use yoso_pss::runtime::sortition::sample_committee;
use yoso_pss::runtime::{ActiveAttack, Adversary};
use yoso_pss::sortition::{GapAnalysis, SecurityParams};

#[test]
fn sampled_committees_drive_the_protocol() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(777);
    // Global pool with 10% corruption; plan with reduced security so the
    // committees stay simulatable, then *scale down* the realized
    // committee to protocol size preserving the ratios.
    let (n_global, f, c_param) = (1_000_000u64, 0.10, 2000.0);
    let sec = SecurityParams { k1: 4, k2: 12, k3: 12 };
    let analysis = GapAnalysis::compute(c_param, f, sec).expect("feasible");

    let circuit = generators::inner_product::<F61>(4).unwrap();
    let inputs: Vec<Vec<F61>> = circuit
        .inputs_per_client()
        .iter()
        .map(|ws| ws.iter().map(|_| F61::random(&mut rng)).collect())
        .collect();
    let expected = circuit.evaluate(&inputs).unwrap();

    let mut runs = 0;
    for _ in 0..5 {
        let sampled = sample_committee(&mut rng, n_global, f, c_param);
        // The analysis guarantees (w.h.p.) φ < t and the gap; verify on
        // this sample, then scale to a simulatable n preserving t/c and
        // the packing ratio.
        assert!(
            (sampled.corrupt as u64) < analysis.t,
            "sampled corruption {} must stay below t = {}",
            sampled.corrupt,
            analysis.t
        );
        let scale = 40.0 / sampled.size as f64;
        let n = 40usize;
        let t = ((sampled.corrupt as f64) * scale).ceil() as usize;
        let k = ((analysis.k as f64 / analysis.c as f64) * n as f64).floor().max(1.0) as usize;
        let Ok(params) = ProtocolParams::new(n, t, k) else {
            // A particularly corrupt sample can fall outside the scaled
            // GOD region — the analysis bounds this w.h.p., not always.
            continue;
        };
        let engine = Engine::new(params, ExecutionConfig::sweep());
        let adversary = Adversary::active(t, ActiveAttack::WrongValue);
        let run = engine.run(&mut rng, &circuit, &inputs, &adversary).unwrap();
        assert_eq!(run.outputs, expected);
        runs += 1;
    }
    assert!(runs >= 4, "nearly all sampled committees must be runnable, got {runs}/5");
}

#[test]
fn planned_parameters_survive_worst_case_sampling() {
    // Take the analysis's own (t, c) — the w.h.p. worst case — and run
    // the protocol at the scaled-down ratio with the full t active.
    let sec = SecurityParams::default();
    let a = GapAnalysis::compute(5000.0, 0.1, sec).expect("feasible");
    let n = 60usize;
    let t = ((a.t as f64 / a.c as f64) * n as f64).floor() as usize;
    let k = ((a.k as f64 / a.c as f64) * n as f64).floor().max(1.0) as usize + 1;
    let params = ProtocolParams::new(n, t, k).expect("analysis ratios are GOD-feasible");

    let mut rng = rand::rngs::StdRng::seed_from_u64(778);
    let circuit = generators::poly_eval::<F61>(3).unwrap();
    let inputs: Vec<Vec<F61>> = circuit
        .inputs_per_client()
        .iter()
        .map(|ws| ws.iter().map(|_| F61::random(&mut rng)).collect())
        .collect();
    let expected = circuit.evaluate(&inputs).unwrap();
    let run = Engine::new(params, ExecutionConfig::sweep())
        .run(&mut rng, &circuit, &inputs, &Adversary::active(t, ActiveAttack::Silent))
        .unwrap();
    assert_eq!(run.outputs, expected);
}
