//! Workspace-spanning end-to-end tests: the full three-phase protocol
//! against cleartext evaluation across circuit families, parameter
//! regimes and adversaries.

use rand::SeedableRng;
use yoso_pss::circuit::{generators, Circuit, CircuitBuilder};
use yoso_pss::core::{Engine, ExecutionConfig, ProtocolParams};
use yoso_pss::field::{F61, PrimeField};
use yoso_pss::runtime::{ActiveAttack, Adversary};

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

fn f(v: u64) -> F61 {
    F61::from(v)
}

fn random_inputs(seed: u64, circuit: &Circuit<F61>) -> Vec<Vec<F61>> {
    let mut r = rng(seed);
    circuit
        .inputs_per_client()
        .iter()
        .map(|ws| ws.iter().map(|_| F61::random(&mut r)).collect())
        .collect()
}

fn check(circuit: &Circuit<F61>, params: ProtocolParams, adversary: &Adversary, seed: u64) {
    let inputs = random_inputs(seed, circuit);
    let expected = circuit.evaluate(&inputs).expect("cleartext evaluation");
    let engine = Engine::new(params, ExecutionConfig::default());
    let run = engine
        .run(&mut rng(seed + 1), circuit, &inputs, adversary)
        .expect("protocol run delivers (GOD)");
    assert_eq!(run.outputs, expected);
}

#[test]
fn all_generators_honest() {
    let params = ProtocolParams::new(10, 2, 2).unwrap();
    let mut mimc_rng = rng(0);
    let circuits: Vec<Circuit<F61>> = vec![
        generators::inner_product(5).unwrap(),
        generators::poly_eval(3).unwrap(),
        generators::federated_stats(3, 2).unwrap(),
        generators::weighted_average(3).unwrap(),
        generators::wide_layered(4, 2, 2).unwrap(),
        generators::mimc(&mut mimc_rng, 2).unwrap(),
    ];
    for (i, c) in circuits.iter().enumerate() {
        check(c, params, &Adversary::none(), 100 + i as u64);
    }
}

#[test]
fn parameter_grid_honest() {
    let circuit = generators::inner_product::<F61>(6).unwrap();
    for (n, t, k) in [(5, 1, 1), (8, 1, 3), (12, 3, 3), (16, 5, 2), (20, 4, 5), (24, 7, 4)] {
        let params = ProtocolParams::new(n, t, k).unwrap();
        check(&circuit, params, &Adversary::none(), 200 + n as u64);
    }
}

#[test]
fn all_attacks_at_maximum_threshold() {
    // t = 3 malicious in every committee of 12; k = 2.
    let params = ProtocolParams::new(12, 3, 2).unwrap();
    let circuit = generators::poly_eval::<F61>(4).unwrap();
    for (i, attack) in [
        ActiveAttack::WrongValue,
        ActiveAttack::BadProof,
        ActiveAttack::Silent,
        ActiveAttack::AdditiveOffset,
    ]
    .into_iter()
    .enumerate()
    {
        check(&circuit, params, &Adversary::active(3, attack), 300 + i as u64);
    }
}

#[test]
fn leaky_roles_do_not_disturb() {
    let params = ProtocolParams::new(10, 2, 2).unwrap();
    let circuit = generators::federated_stats::<F61>(2, 3).unwrap();
    let adversary = Adversary::active(2, ActiveAttack::WrongValue).with_leaky(3);
    check(&circuit, params, &adversary, 400);
}

#[test]
fn mixed_attack_and_failstop() {
    // n = 16, t = 2, k = 2, 4 fail-stops budgeted: 16−2−4 = 10 ≥ 2+2+1.
    let params = ProtocolParams::with_failstops(16, 2, 2, 4).unwrap();
    let circuit = generators::inner_product::<F61>(4).unwrap();
    let adversary = Adversary::active(2, ActiveAttack::Silent)
        .with_failstops(4, yoso_pss::core::crash_phases::ONLINE_MULT);
    check(&circuit, params, &adversary, 500);
}

#[test]
fn crashes_in_earlier_phases_are_survived() {
    let params = ProtocolParams::with_failstops(16, 2, 2, 4).unwrap();
    let circuit = generators::inner_product::<F61>(4).unwrap();
    for (i, phase) in [
        yoso_pss::core::crash_phases::ONLINE_KEYDIST,
        yoso_pss::core::crash_phases::ONLINE_MULT,
        yoso_pss::core::crash_phases::ONLINE_OUTPUT,
    ]
    .into_iter()
    .enumerate()
    {
        let adversary = Adversary::active(1, ActiveAttack::WrongValue).with_failstops(4, phase);
        check(&circuit, params, &adversary, 600 + i as u64);
    }
}

#[test]
fn multi_output_multi_client_routing() {
    // Outputs to different clients from shared sub-expressions.
    let mut b = CircuitBuilder::<F61>::new();
    let x = b.input(0);
    let y = b.input(1);
    let z = b.input(2);
    let xy = b.mul(x, y);
    let yz = b.mul(y, z);
    let s = b.add(xy, yz);
    let sq = b.mul(s, s);
    b.output(xy, 0);
    b.output(yz, 1);
    b.output(sq, 2);
    b.output(sq, 0);
    let circuit = b.build().unwrap();
    let params = ProtocolParams::new(10, 2, 2).unwrap();
    check(&circuit, params, &Adversary::none(), 700);
}

#[test]
fn ragged_batches_with_padding_free_packing() {
    // 5 muls in one layer with k = 3 → batches of 3 and 2.
    let mut b = CircuitBuilder::<F61>::new();
    let xs: Vec<_> = (0..5).map(|_| b.input(0)).collect();
    let ys: Vec<_> = (0..5).map(|_| b.input(1)).collect();
    let mut acc = None;
    for (x, y) in xs.iter().zip(&ys) {
        let m = b.mul(*x, *y);
        acc = Some(match acc {
            None => m,
            Some(a) => b.add(a, m),
        });
    }
    b.output(acc.unwrap(), 0);
    let circuit = b.build().unwrap();
    let params = ProtocolParams::new(12, 3, 3).unwrap();
    check(&circuit, params, &Adversary::active(3, ActiveAttack::WrongValue), 800);
}

#[test]
fn input_wires_are_masked_on_the_board() {
    // The published μ of an input wire must differ from the input value
    // itself (the λ mask is uniformly random — collision is ~2^-61).
    let circuit = generators::inner_product::<F61>(3).unwrap();
    let inputs = vec![vec![f(1), f(2), f(3)], vec![f(4), f(5), f(6)]];
    let engine =
        Engine::new(ProtocolParams::new(8, 1, 2).unwrap(), ExecutionConfig::default());
    let run = engine.run(&mut rng(900), &circuit, &inputs, &Adversary::none()).unwrap();
    for (client, wires) in circuit.inputs_per_client().iter().enumerate() {
        for (idx, w) in wires.iter().enumerate() {
            assert_ne!(run.mu[w.0], inputs[client][idx], "μ must not leak the input");
        }
    }
}

#[test]
fn mu_is_consistent_with_linear_structure() {
    // μ respects the circuit's linear relations: μ_add = μ_a + μ_b etc.
    let mut b = CircuitBuilder::<F61>::new();
    let x = b.input(0);
    let y = b.input(0);
    let s = b.add(x, y);
    let d = b.sub(s, y);
    let m = b.mul_const(d, f(7));
    let p = b.mul(m, s);
    b.output(p, 0);
    let circuit = b.build().unwrap();
    let engine =
        Engine::new(ProtocolParams::new(8, 1, 1).unwrap(), ExecutionConfig::default());
    let run = engine
        .run(&mut rng(901), &circuit, &[vec![f(10), f(20)]], &Adversary::none())
        .unwrap();
    assert_eq!(run.mu[s.0], run.mu[x.0] + run.mu[y.0]);
    assert_eq!(run.mu[d.0], run.mu[s.0] - run.mu[y.0]);
    assert_eq!(run.mu[m.0], run.mu[d.0] * f(7));
}

#[test]
fn deterministic_given_seed() {
    let circuit = generators::inner_product::<F61>(4).unwrap();
    let inputs = random_inputs(5, &circuit);
    let params = ProtocolParams::new(8, 1, 2).unwrap();
    let run1 = Engine::new(params, ExecutionConfig::default())
        .run(&mut rng(42), &circuit, &inputs, &Adversary::none())
        .unwrap();
    let run2 = Engine::new(params, ExecutionConfig::default())
        .run(&mut rng(42), &circuit, &inputs, &Adversary::none())
        .unwrap();
    assert_eq!(run1.outputs, run2.outputs);
    assert_eq!(run1.mu, run2.mu);
}

#[test]
fn round_count_scales_with_mul_depth() {
    // The synchronous round count tracks the number of sequential
    // committee steps: deeper circuits need more rounds.
    let params = ProtocolParams::new(8, 1, 2).unwrap();
    let rounds_for = |depth: usize| {
        let circuit = generators::wide_layered::<F61>(2, depth, 2).unwrap();
        let inputs = random_inputs(33, &circuit);
        Engine::new(params, ExecutionConfig::sweep())
            .run(&mut rng(34), &circuit, &inputs, &Adversary::none())
            .unwrap()
            .rounds
    };
    let shallow = rounds_for(1);
    let deep = rounds_for(4);
    assert!(deep > shallow, "rounds: depth 1 → {shallow}, depth 4 → {deep}");
    // Each extra mul layer costs exactly 2 rounds (offline decrypt +
    // online mult).
    assert_eq!(deep - shallow, 6);
}

#[test]
fn dealerless_setup_end_to_end() {
    // The full protocol with the DKG-generated threshold key (no
    // trusted dealer for tpk/tsk), under an active adversary.
    let circuit = generators::inner_product::<F61>(4).unwrap();
    let inputs = random_inputs(50, &circuit);
    let expected = circuit.evaluate(&inputs).unwrap();
    let params = ProtocolParams::new(10, 2, 2).unwrap();
    let engine = Engine::new(params, ExecutionConfig::default().dealerless());
    let adversary = Adversary::active(2, ActiveAttack::WrongValue);
    let run = engine.run(&mut rng(51), &circuit, &inputs, &adversary).unwrap();
    assert_eq!(run.outputs, expected);
    // DKG traffic shows up as its own phase.
    assert!(run.elements("setup/dkg") > 0);
}
