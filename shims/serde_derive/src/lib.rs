//! No-op derive macros for the offline `serde` shim.
//!
//! The shim's `Serialize`/`Deserialize` traits carry blanket
//! implementations, so the derives only need to exist (and accept the
//! `#[serde(...)]` helper attributes) — they expand to nothing.

use proc_macro::TokenStream;

/// Expands to nothing; `serde::Serialize` is blanket-implemented.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; `serde::Deserialize` is blanket-implemented.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
