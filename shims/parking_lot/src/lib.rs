//! Offline subset of `parking_lot`, backed by `std::sync` primitives.
//!
//! Exposes `parking_lot`'s non-poisoning API (`lock()`/`read()`/
//! `write()` return guards directly). Poisoned std locks are
//! recovered transparently, matching parking_lot's semantics of never
//! poisoning.

#![forbid(unsafe_code)]

use std::sync;

/// A reader-writer lock with `parking_lot`'s non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

/// Shared read guard.
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive write guard.
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A mutex with `parking_lot`'s non-poisoning API.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

/// Exclusive mutex guard.
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Acquires the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
