//! Offline subset of `serde`.
//!
//! The workspace only uses serde as derive annotations and trait
//! bounds (no wire format is exercised anywhere — there is no
//! `serde_json`/`bincode` in the dependency tree), so this shim
//! provides marker traits with blanket implementations and no-op
//! derive macros. Swapping the real `serde` back in requires no source
//! changes in the workspace.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize<'de>`; blanket-implemented.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// Minimal `serde::de` namespace for `DeserializeOwned` imports.
pub mod de {
    pub use crate::DeserializeOwned;
}
