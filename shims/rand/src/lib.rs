//! Offline, API-compatible subset of the `rand` crate (0.8 series).
//!
//! The build container has no network access to crates.io, so the
//! workspace vendors the small slice of `rand` it actually uses:
//! [`RngCore`], [`SeedableRng`], the [`Rng`] extension trait with
//! `gen`, [`rngs::StdRng`] (xoshiro256++ behind the same API), and
//! [`seq::SliceRandom::shuffle`].
//!
//! Determinism matters more than distribution pedigree here: every
//! protocol test seeds explicitly via `seed_from_u64`, and all
//! assertions are self-consistent (round-trips, algebraic identities),
//! never golden constants tied to upstream `rand`'s stream.

#![forbid(unsafe_code)]

use core::fmt;

/// Error type for fallible RNG operations (never produced by the
/// deterministic generators in this workspace).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible [`Self::fill_bytes`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Marker for cryptographically secure generators.
pub trait CryptoRng {}

impl<R: CryptoRng + ?Sized> CryptoRng for &mut R {}

/// A generator seedable from a fixed-size byte seed.
pub trait SeedableRng: Sized {
    /// The seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` seed by expanding it with
    /// SplitMix64 (the same construction upstream `rand` uses).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types samplable from raw generator output via [`Rng::gen`]
/// (stand-in for `rand::distributions::Standard`).
pub trait Standard: Sized {
    /// Samples a uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                let mut wide: u128 = 0;
                let mut produced = 0usize;
                while produced < <$t>::BITS as usize {
                    wide = (wide << 64) | rng.next_u64() as u128;
                    produced += 64;
                }
                wide as $t
            }
        }
    )*};
}

impl_standard_uint!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits mapped to [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl<const N: usize, T: Standard> Standard for [T; N] {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        core::array::from_fn(|_| T::sample(rng))
    }
}

/// Extension methods over [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples a uniform value in `[0, bound)`.
    ///
    /// Only the half-open `low..high` integer form used by this
    /// workspace is supported.
    fn gen_range(&mut self, range: core::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range");
        range.start + uniform_below(self, range.end - range.start)
    }

    /// Samples a boolean that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Uniform value in `[0, bound)` by rejection sampling (unbiased, and
/// identical across platforms).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

/// Named generators.
pub mod rngs {
    use super::{CryptoRng, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator:
    /// xoshiro256++ behind `rand::rngs::StdRng`'s API surface.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s = [0x9E37_79B9_7F4A_7C15, 0xBF58_476D_1CE4_E5B9, 0x94D0_49BB_1331_11EB, 1];
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&bytes[..n]);
            }
        }
    }

    impl CryptoRng for StdRng {}
}

/// Sequence-related helpers.
pub mod seq {
    use super::{uniform_below, RngCore};

    /// Slice extension methods (subset: `shuffle`, `choose`).
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_below(rng, self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_types_and_ranges() {
        let mut r = StdRng::seed_from_u64(1);
        let _: u64 = r.gen();
        let f: f64 = r.gen();
        assert!((0.0..1.0).contains(&f));
        for _ in 0..100 {
            let v = r.gen_range(10..20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fill_bytes_chunks_agree_with_stream() {
        let mut a = StdRng::seed_from_u64(4);
        let mut b = StdRng::seed_from_u64(4);
        let mut big = [0u8; 24];
        a.fill_bytes(&mut big);
        let mut parts = Vec::new();
        for _ in 0..3 {
            let mut buf = [0u8; 8];
            b.fill_bytes(&mut buf);
            parts.extend_from_slice(&buf);
        }
        assert_eq!(parts, big.to_vec());
    }
}
