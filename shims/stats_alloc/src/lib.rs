//! Offline subset of the `stats_alloc` crate: a wrapping
//! [`GlobalAlloc`] that counts every allocation, reallocation and
//! deallocation the program performs.
//!
//! Usage (in the binary crate, behind a feature so ordinary builds
//! keep the system allocator unwrapped):
//!
//! ```rust,ignore
//! use stats_alloc::{StatsAlloc, INSTRUMENTED_SYSTEM};
//! use std::alloc::System;
//!
//! #[global_allocator]
//! static GLOBAL: &StatsAlloc<System> = &INSTRUMENTED_SYSTEM;
//!
//! let before = INSTRUMENTED_SYSTEM.stats();
//! // ... workload ...
//! let after = INSTRUMENTED_SYSTEM.stats();
//! println!("allocations: {}", after.allocations - before.allocations);
//! ```
//!
//! Counters use relaxed atomics: the readout is a monotone snapshot,
//! not a synchronization point, which keeps the per-allocation
//! overhead to one `fetch_add`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// A `GlobalAlloc` wrapper that counts operations before delegating.
#[derive(Debug)]
pub struct StatsAlloc<T: GlobalAlloc> {
    inner: T,
    allocations: AtomicU64,
    deallocations: AtomicU64,
    reallocations: AtomicU64,
    bytes_allocated: AtomicU64,
}

/// The instrumented system allocator: register a reference to this
/// static with `#[global_allocator]` and read it back anywhere.
pub static INSTRUMENTED_SYSTEM: StatsAlloc<System> = StatsAlloc::system();

/// A monotone snapshot of the counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Stats {
    /// Calls to `alloc`/`alloc_zeroed`.
    pub allocations: u64,
    /// Calls to `dealloc`.
    pub deallocations: u64,
    /// Calls to `realloc`.
    pub reallocations: u64,
    /// Total bytes requested across `alloc`/`alloc_zeroed`/`realloc`.
    pub bytes_allocated: u64,
}

impl StatsAlloc<System> {
    /// A zeroed wrapper around [`System`], usable in statics.
    pub const fn system() -> Self {
        StatsAlloc {
            inner: System,
            allocations: AtomicU64::new(0),
            deallocations: AtomicU64::new(0),
            reallocations: AtomicU64::new(0),
            bytes_allocated: AtomicU64::new(0),
        }
    }
}

impl<T: GlobalAlloc> StatsAlloc<T> {
    /// Wraps an arbitrary allocator.
    pub const fn new(inner: T) -> Self {
        StatsAlloc {
            inner,
            allocations: AtomicU64::new(0),
            deallocations: AtomicU64::new(0),
            reallocations: AtomicU64::new(0),
            bytes_allocated: AtomicU64::new(0),
        }
    }

    /// Current counter snapshot.
    pub fn stats(&self) -> Stats {
        Stats {
            allocations: self.allocations.load(Ordering::Relaxed),
            deallocations: self.deallocations.load(Ordering::Relaxed),
            reallocations: self.reallocations.load(Ordering::Relaxed),
            bytes_allocated: self.bytes_allocated.load(Ordering::Relaxed),
        }
    }
}

// SAFETY: delegates every operation to the wrapped allocator
// unchanged; the wrapper only bumps atomic counters, which allocate
// nothing and cannot fail.
unsafe impl<T: GlobalAlloc> GlobalAlloc for StatsAlloc<T> {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        self.allocations.fetch_add(1, Ordering::Relaxed);
        self.bytes_allocated.fetch_add(layout.size() as u64, Ordering::Relaxed);
        self.inner.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        self.allocations.fetch_add(1, Ordering::Relaxed);
        self.bytes_allocated.fetch_add(layout.size() as u64, Ordering::Relaxed);
        self.inner.alloc_zeroed(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        self.deallocations.fetch_add(1, Ordering::Relaxed);
        self.inner.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        self.reallocations.fetch_add(1, Ordering::Relaxed);
        self.bytes_allocated.fetch_add(new_size as u64, Ordering::Relaxed);
        self.inner.realloc(ptr, layout, new_size)
    }
}

// SAFETY: pure delegation to the referenced wrapper, which upholds the
// contract itself. This impl is what lets `#[global_allocator]` take a
// `&'static StatsAlloc<System>` pointing at [`INSTRUMENTED_SYSTEM`].
unsafe impl<T: GlobalAlloc> GlobalAlloc for &StatsAlloc<T> {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        (**self).alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        (**self).alloc_zeroed(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        (**self).dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        (**self).realloc(ptr, layout, new_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_move_with_allocations() {
        let a = StatsAlloc::new(System);
        let layout = Layout::from_size_align(64, 8).unwrap();
        // SAFETY: plain alloc/dealloc pair with a valid layout.
        unsafe {
            let p = a.alloc(layout);
            assert!(!p.is_null());
            a.dealloc(p, layout);
        }
        let s = a.stats();
        assert_eq!(s.allocations, 1);
        assert_eq!(s.deallocations, 1);
        assert_eq!(s.bytes_allocated, 64);
    }
}
