//! Offline subset of `criterion`.
//!
//! Implements the macro and builder surface the workspace's benches
//! use (`criterion_group!`/`criterion_main!`, `Criterion`,
//! `BenchmarkGroup`, `Bencher::iter`, `BenchmarkId`, `Throughput`,
//! `black_box`) over a plain wall-clock measurement loop. Results are
//! printed as `<id>  <ns>/iter`; there is no statistical analysis,
//! plotting, or baseline comparison.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness state; mirrors criterion's builder API.
#[derive(Debug, Clone)]
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_millis(1000),
            sample_size: 20,
        }
    }
}

impl Criterion {
    /// Sets the warm-up duration.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement duration.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Sets the per-benchmark sample count.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Disables plot generation (no-op: the shim never plots).
    pub fn without_plots(self) -> Self {
        self
    }

    /// Runs a single benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(id, self.warm_up, self.measurement, None, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    /// Records the per-iteration throughput for subsequent benches.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into().0);
        run_benchmark(
            &id,
            self.criterion.warm_up,
            self.criterion.measurement,
            self.throughput,
            &mut f,
        );
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = format!("{}/{}", self.name, id.into().0);
        run_benchmark(
            &id,
            self.criterion.warm_up,
            self.criterion.measurement,
            self.throughput,
            &mut |b| f(b, input),
        );
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Per-iteration work declared for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F>(
    id: &str,
    warm_up: Duration,
    measurement: Duration,
    throughput: Option<Throughput>,
    f: &mut F,
) where
    F: FnMut(&mut Bencher),
{
    // Calibration: run single iterations until the warm-up budget is
    // spent (at least once) to learn the per-iteration cost.
    let mut probe = Bencher { iters: 1, elapsed: Duration::ZERO };
    let calibrate_start = Instant::now();
    let mut per_iter = Duration::ZERO;
    let mut probes = 0u32;
    loop {
        f(&mut probe);
        per_iter += probe.elapsed;
        probes += 1;
        if calibrate_start.elapsed() >= warm_up {
            break;
        }
    }
    per_iter /= probes;

    // Measurement: one batch sized to fill the measurement budget.
    let iters = if per_iter.is_zero() {
        1000
    } else {
        (measurement.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 10_000_000) as u64
    };
    let mut bencher = Bencher { iters, elapsed: Duration::ZERO };
    f(&mut bencher);
    let ns = bencher.elapsed.as_nanos() as f64 / bencher.iters.max(1) as f64;

    match throughput {
        Some(Throughput::Elements(n)) if n > 0 => {
            let per_elem = ns / n as f64;
            println!("{id:<48} {ns:>14.1} ns/iter   {per_elem:>12.1} ns/elem");
        }
        Some(Throughput::Bytes(n)) if n > 0 => {
            let per_byte = ns / n as f64;
            println!("{id:<48} {ns:>14.1} ns/iter   {per_byte:>12.3} ns/byte");
        }
        _ => println!("{id:<48} {ns:>14.1} ns/iter"),
    }
}

/// Declares a benchmark group function, in either criterion form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
