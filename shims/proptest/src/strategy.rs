//! The `Strategy` trait and its combinators.
//!
//! A strategy is anything that can draw a value from a [`TestRng`].
//! Unlike real proptest there is no value tree / shrinking layer:
//! `sample` returns the final value directly.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeFrom, RangeInclusive};

/// A source of random test inputs.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps produced values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { source: self, f }
    }

    /// Derives a second strategy from each produced value and samples it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }

    /// Retains only values for which `f` returns true.
    ///
    /// The shim re-samples inline (bounded) instead of rejecting the
    /// whole case; `whence` is reported if the filter never passes.
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { source: self, whence, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.source.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.sample(rng)).sample(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    source: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let value = self.source.sample(rng);
            if (self.f)(&value) {
                return value;
            }
        }
        panic!("prop_filter never satisfied: {}", self.whence);
    }
}

/// Strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among type-erased alternatives (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `options`; must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].sample(rng)
    }
}

macro_rules! unsigned_range_strategies {
    ($($ty:ty),+) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                rng.in_range_u64(self.start as u64, self.end as u64 - 1) as $ty
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;

            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start() <= self.end(), "empty range strategy");
                rng.in_range_u64(*self.start() as u64, *self.end() as u64) as $ty
            }
        }

        impl Strategy for RangeFrom<$ty> {
            type Value = $ty;

            fn sample(&self, rng: &mut TestRng) -> $ty {
                rng.in_range_u64(self.start as u64, <$ty>::MAX as u64) as $ty
            }
        }
    )+};
}

unsigned_range_strategies!(u8, u16, u32, u64, usize);

impl Strategy for Range<u128> {
    type Value = u128;

    fn sample(&self, rng: &mut TestRng) -> u128 {
        assert!(self.start < self.end, "empty range strategy");
        rng.in_range_u128(self.start, self.end - 1)
    }
}

impl Strategy for RangeInclusive<u128> {
    type Value = u128;

    fn sample(&self, rng: &mut TestRng) -> u128 {
        assert!(self.start() <= self.end(), "empty range strategy");
        rng.in_range_u128(*self.start(), *self.end())
    }
}

impl Strategy for RangeFrom<u128> {
    type Value = u128;

    fn sample(&self, rng: &mut TestRng) -> u128 {
        rng.in_range_u128(self.start, u128::MAX)
    }
}

macro_rules! signed_range_strategies {
    ($($ty:ty),+) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128 - 1) as u64;
                let off = rng.in_range_u64(0, span);
                (self.start as i128 + off as i128) as $ty
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;

            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128) as u64;
                let off = rng.in_range_u64(0, span);
                (*self.start() as i128 + off as i128) as $ty
            }
        }
    )+};
}

signed_range_strategies!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategies {
    ($(($($name:ident),+))+) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )+};
}

tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}
