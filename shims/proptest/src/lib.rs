//! Offline subset of `proptest`.
//!
//! Re-implements the slice of the proptest API this workspace uses —
//! `proptest!`, `prop_assert*`/`prop_assume`, `prop_oneof!`, `any`,
//! range/tuple/collection strategies, `prop_map`/`prop_flat_map`,
//! `sample::{select, Index}` — on top of a deterministic per-test RNG.
//! Unlike real proptest there is no shrinking: a failing case panics
//! with the assertion message. Inputs are deterministic per test name,
//! so failures reproduce exactly across runs.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// Everything a proptest-based test file needs, matching
/// `proptest::prelude::*` for the API subset the workspace uses.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
    // Real proptest exposes the crate as `prop` inside its prelude so
    // call sites can write `prop::collection::vec`, `prop::sample::select`.
    pub use crate as prop;
}

/// Defines property tests.
///
/// Supports the standard form used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn name(x in strategy_expr, (a, b) in other_strategy) { body }
/// }
/// ```
///
/// Each test runs `config.cases` sampled inputs; `prop_assume!`
/// rejections re-sample (bounded), assertion failures panic.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_body!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_body {
    ( ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block
    )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                    module_path!(),
                    "::",
                    stringify!($name)
                ));
                let mut passed: u32 = 0;
                let mut rejected: u32 = 0;
                let max_rejects = config.cases.saturating_mul(64).max(1024);
                while passed < config.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match outcome {
                        ::std::result::Result::Ok(()) => passed += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(why)) => {
                            rejected += 1;
                            assert!(
                                rejected < max_rejects,
                                "proptest {}: too many inputs rejected by prop_assume ({}): {}",
                                stringify!($name),
                                rejected,
                                why,
                            );
                        }
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest {} failed after {} passing case(s): {}",
                                stringify!($name),
                                passed,
                                msg,
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Fails the current case with a message if the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case if the two expressions are unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
                    left, right,
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `left == right`: {}\n  left: `{:?}`\n right: `{:?}`",
                    ::std::format!($($fmt)+), left, right,
                ),
            ));
        }
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `left != right`\n  both: `{:?}`",
                    left,
                ),
            ));
        }
    }};
}

/// Rejects the current case (re-samples new inputs) if the condition
/// does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Uniform choice between several strategies producing the same value
/// type (unweighted form only).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
