//! Test-runner types: per-test deterministic RNG, run configuration,
//! and the case-level error channel used by `prop_assert!`/`prop_assume!`.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Run configuration. Only `cases` is consulted by the shim runner.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of passing cases required per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` successful cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// Input rejected by `prop_assume!`; the runner re-samples.
    Reject(String),
    /// Assertion failure; the runner panics with the message.
    Fail(String),
}

impl TestCaseError {
    /// An assertion failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// An input rejection.
    pub fn reject(why: impl Into<String>) -> Self {
        TestCaseError::Reject(why.into())
    }
}

/// Deterministic RNG driving strategy sampling.
///
/// Seeded from a hash of the fully-qualified test name, so each test
/// sees a stable input sequence across runs and machines (no
/// time/env entropy), while distinct tests see distinct streams.
#[derive(Debug)]
pub struct TestRng(StdRng);

impl TestRng {
    /// RNG seeded deterministically from `name` (FNV-1a).
    pub fn deterministic(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(hash))
    }

    /// Next 64 uniform random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "TestRng::below: zero bound");
        // Rejection sampling over the widest multiple of `bound`.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let raw = self.next_u64();
            if raw < zone {
                return raw % bound;
            }
        }
    }

    /// Uniform value in the inclusive range `[lo, hi]`.
    pub fn in_range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.below(span + 1)
    }

    /// Uniform value in the inclusive range `[lo, hi]` over `u128`.
    pub fn in_range_u128(&mut self, lo: u128, hi: u128) -> u128 {
        debug_assert!(lo <= hi);
        let span = hi - lo;
        if span == u128::MAX {
            return (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64());
        }
        let bound = span + 1;
        let zone = u128::MAX - (u128::MAX % bound);
        loop {
            let raw = (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64());
            if raw < zone {
                return lo + raw % bound;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
