//! Sampling helpers (`prop::sample::{select, Index}`).

use crate::arbitrary::Arbitrary;
use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy choosing uniformly from a fixed list of values.
pub struct Select<T: Clone>(Vec<T>);

/// Uniform choice from `options`; must be non-empty.
pub fn select<T: Clone + 'static>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "sample::select needs options");
    Select(options)
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.0.len() as u64) as usize;
        self.0[idx].clone()
    }
}

/// A length-independent random index: sampled once, projected onto any
/// collection length later via [`Index::index`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index(u64);

impl Index {
    /// Projects this index onto a collection of length `len` (> 0).
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index on empty collection");
        (self.0 % len as u64) as usize
    }
}

impl Arbitrary for Index {
    fn arbitrary(rng: &mut TestRng) -> Self {
        Index(rng.next_u64())
    }
}
