//! `Arbitrary` and the `any::<T>()` entry point.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical "uniform" strategy.
pub trait Arbitrary: Sized {
    /// Draws one uniform value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `A` (what `any::<A>()` returns).
pub struct Any<A>(PhantomData<A>);

/// Strategy producing uniform values of `A`.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;

    fn sample(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

macro_rules! int_arbitrary {
    ($($ty:ty),+) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                // Truncation keeps low bits; xoshiro output is uniform
                // in every bit position.
                rng.next_u64() as $ty
            }
        }
    )+};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> i128 {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl<T: Arbitrary + Default + Copy, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> [T; N] {
        let mut out = [T::default(); N];
        for slot in &mut out {
            *slot = T::arbitrary(rng);
        }
        out
    }
}
