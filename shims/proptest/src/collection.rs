//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// An inclusive length range for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        rng.in_range_u64(self.lo as u64, self.hi as u64) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange { lo: exact, hi: exact }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange { lo: r.start, hi: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange { lo: *r.start(), hi: *r.end() }
    }
}

/// Strategy for `Vec`s with element strategy `S`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// `Vec` strategy drawing a length from `size`, then that many elements.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
